package service

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tpq/internal/pattern"
	"tpq/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func closeService(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSecondTier is the persistence round trip inside one process:
// a computed entry is written behind to the store, and a fresh service
// over the same store (no warm-start) serves it as a cache hit without
// recomputing.
func TestStoreSecondTier(t *testing.T) {
	dir := t.TempDir()
	q := pattern.MustParse("a*[/b, /b]")

	svc1 := New(Options{Store: openStore(t, dir)})
	out1, rep, err := svc1.Minimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("first minimization reported a cache hit")
	}
	closeService(t, svc1) // drains the write-behind queue
	if snap := svc1.Stats(); snap.StorePuts != 1 || snap.StoreDropped != 0 {
		t.Fatalf("after close: StorePuts=%d StoreDropped=%d, want 1, 0", snap.StorePuts, snap.StoreDropped)
	}

	// Same store, new service, cold LRU: the store answers the miss.
	svc2 := New(Options{Store: openStore(t, dir), WarmStart: 0})
	defer closeService(t, svc2)
	out2, rep, err := svc2.Minimize(context.Background(), q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Error("store-tier hit not reported as a cache hit")
	}
	if out1.Canonical() != out2.Canonical() {
		t.Errorf("persisted result differs: %s vs %s", out1, out2)
	}
	snap := svc2.Stats()
	if snap.Minimizations != 0 {
		t.Errorf("Minimizations = %d, want 0 (store answered)", snap.Minimizations)
	}
	if snap.StoreHits != 1 {
		t.Errorf("StoreHits = %d, want 1", snap.StoreHits)
	}
	if snap.WarmStarted != 0 {
		t.Errorf("WarmStarted = %d, want 0 (warm-start disabled)", snap.WarmStarted)
	}

	// Promoted into the LRU: the repeat is a plain LRU hit.
	if _, rep, err = svc2.Minimize(context.Background(), q.Clone()); err != nil || !rep.CacheHit {
		t.Fatalf("repeat: rep=%+v err=%v", rep, err)
	}
	if snap := svc2.Stats(); snap.Hits != 1 || snap.StoreHits != 1 {
		t.Errorf("after repeat: Hits=%d StoreHits=%d, want 1, 1", snap.Hits, snap.StoreHits)
	}
}

// TestWarmStart restarts the service over a populated store and checks
// the LRU is pre-filled: the first request is already an LRU hit, no
// store read, no pipeline run.
func TestWarmStart(t *testing.T) {
	dir := t.TempDir()
	queries := []string{"a*[/b, /b]", "c*[//d, //d]", "e*/f"}

	svc1 := New(Options{Store: openStore(t, dir)})
	for _, src := range queries {
		if _, _, err := svc1.Minimize(context.Background(), pattern.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	closeService(t, svc1)

	svc2 := New(Options{Store: openStore(t, dir), WarmStart: -1})
	defer closeService(t, svc2)
	if snap := svc2.Stats(); snap.WarmStarted != int64(len(queries)) {
		t.Fatalf("WarmStarted = %d, want %d", snap.WarmStarted, len(queries))
	}
	for _, src := range queries {
		_, rep, err := svc2.Minimize(context.Background(), pattern.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.CacheHit {
			t.Errorf("warm-started query %q not served as a cache hit", src)
		}
	}
	snap := svc2.Stats()
	if snap.Hits != int64(len(queries)) || snap.StoreHits != 0 || snap.Minimizations != 0 {
		t.Errorf("after warm-start: Hits=%d StoreHits=%d Minimizations=%d, want %d, 0, 0",
			snap.Hits, snap.StoreHits, snap.Minimizations, len(queries))
	}
}

// TestWarmStartBounded checks the limit: only the n most recently
// written entries are preloaded.
func TestWarmStartBounded(t *testing.T) {
	dir := t.TempDir()
	svc1 := New(Options{Store: openStore(t, dir)})
	for i := 0; i < 5; i++ {
		q := pattern.MustParse(fmt.Sprintf("q%d*/x", i))
		if _, _, err := svc1.Minimize(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	closeService(t, svc1)

	svc2 := New(Options{Store: openStore(t, dir), WarmStart: 2})
	defer closeService(t, svc2)
	if snap := svc2.Stats(); snap.WarmStarted != 2 {
		t.Fatalf("WarmStarted = %d, want 2", snap.WarmStarted)
	}
	// The most recently written query is among the preloaded ones.
	_, rep, err := svc2.Minimize(context.Background(), pattern.MustParse("q4*/x"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit || svc2.Stats().Hits != 1 {
		t.Error("most recent entry missing from the warm-started LRU")
	}
}

// TestEntryEndpoint covers the peer-fetch wire protocol end to end:
// hex-keyed lookup, 404 on unknown keys, 400 on malformed ones.
func TestEntryEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Options{Store: openStore(t, t.TempDir())}, HandlerOptions{})
	q := pattern.MustParse("a*[/b, /b]")
	if _, _, err := svc.Minimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	key := svc.storeKey(q.Canonical())

	resp, err := http.Get(ts.URL + "/internal/entry?key=" + hex.EncodeToString(key))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	e, err := decodeStored(body)
	if err != nil {
		t.Fatalf("response is not a stored entry: %v\n%s", err, body)
	}
	if e.canon != q.Canonical() {
		t.Errorf("entry canon mismatch: %q", e.canon)
	}

	unknown := make([]byte, store.KeySize)
	if resp, err := http.Get(ts.URL + "/internal/entry?key=" + hex.EncodeToString(unknown)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown key: status %d, want 404", resp.StatusCode)
		}
	}
	for _, bad := range []string{"", "zz", "abcd"} {
		resp, err := http.Get(ts.URL + "/internal/entry?key=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("key %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestPeerFetch runs a two-node fleet: node B misses locally on a key
// owned by node A, fetches A's entry over /internal/entry, and serves
// it as a cache hit without running the pipeline.
func TestPeerFetch(t *testing.T) {
	svcA, tsA := newTestServer(t, Options{Store: openStore(t, t.TempDir())}, HandlerOptions{})
	addrA := strings.TrimPrefix(tsA.URL, "http://")
	const addrB = "node-b.invalid:1" // B never receives fetches in this test

	svcB := New(Options{Peers: []string{addrA, addrB}, Self: addrB})
	defer closeService(t, svcB)

	// Pick a query whose key the ring assigns to A, so B must fetch.
	var q *pattern.Pattern
	for i := 0; i < 64; i++ {
		cand := pattern.MustParse(fmt.Sprintf("p%d*[/b, /b]", i))
		if svcB.ring.Owner(svcB.storeKey(cand.Canonical())) == addrA {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no candidate key owned by node A — ring badly unbalanced")
	}

	// A owns the key but has not computed it yet: B's fetch misses and B
	// computes locally (a definitive single-hop miss, not an error).
	if _, rep, err := svcB.Minimize(context.Background(), q.Clone()); err != nil || rep.CacheHit {
		t.Fatalf("pre-publication: rep=%+v err=%v", rep, err)
	}
	snap := svcB.Stats()
	if snap.PeerFetches != 1 || snap.PeerHits != 0 || snap.PeerErrors != 0 || snap.Minimizations != 1 {
		t.Fatalf("pre-publication stats: %+v", snap)
	}

	// Publish on A, then ask a fresh B (cold LRU) again: served by peer
	// fetch, no pipeline run.
	outA, _, err := svcA.Minimize(context.Background(), q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	svcB2 := New(Options{Peers: []string{addrA, addrB}, Self: addrB})
	defer closeService(t, svcB2)
	outB, rep, err := svcB2.Minimize(context.Background(), q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Error("peer-fetched entry not reported as a cache hit")
	}
	if outA.Canonical() != outB.Canonical() {
		t.Errorf("peer-fetched result differs: %s vs %s", outA, outB)
	}
	snap = svcB2.Stats()
	if snap.PeerFetches != 1 || snap.PeerHits != 1 || snap.Minimizations != 0 {
		t.Fatalf("post-publication stats: %+v", snap)
	}

	// The fetched entry was promoted into B's LRU: no second fetch.
	if _, rep, err := svcB2.Minimize(context.Background(), q.Clone()); err != nil || !rep.CacheHit {
		t.Fatalf("repeat: rep=%+v err=%v", rep, err)
	}
	if snap := svcB2.Stats(); snap.PeerFetches != 1 || snap.Hits != 1 {
		t.Fatalf("repeat stats: PeerFetches=%d Hits=%d, want 1, 1", snap.PeerFetches, snap.Hits)
	}
}

// TestPeerFetchSelfOwned checks that keys this node owns never leave
// the node: no fetch, straight to compute.
func TestPeerFetchSelfOwned(t *testing.T) {
	const addrA = "node-a.invalid:1"
	const addrB = "node-b.invalid:1"
	svc := New(Options{Peers: []string{addrA, addrB}, Self: addrB})
	defer closeService(t, svc)

	var q *pattern.Pattern
	for i := 0; i < 64; i++ {
		cand := pattern.MustParse(fmt.Sprintf("s%d*/x", i))
		if svc.ring.Owner(svc.storeKey(cand.Canonical())) == addrB {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no candidate key owned by self")
	}
	if _, rep, err := svc.Minimize(context.Background(), q); err != nil || rep.CacheHit {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	if snap := svc.Stats(); snap.PeerFetches != 0 || snap.Minimizations != 1 {
		t.Fatalf("self-owned key left the node: %+v", snap)
	}
}

// TestStoreRoundTripCodec pins the persisted encoding: encode → decode
// is the identity on everything the serving layer needs.
func TestStoreRoundTripCodec(t *testing.T) {
	q := pattern.MustParse("a*[/b, //c]")
	e := &entry{
		canon: q.Canonical(),
		out:   q,
		rep: Report{
			InputSize: 4, OutputSize: 3, CDMRemoved: 1, ACIMRemoved: 0, Unsatisfiable: true,
		},
	}
	val, err := encodeStored(e, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeStored(val)
	if err != nil {
		t.Fatal(err)
	}
	if got.canon != e.canon || got.out.Canonical() != q.Canonical() || got.rep != e.rep {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}
	for _, bad := range [][]byte{nil, []byte("{}"), []byte(`{"canon":"x"}`), []byte(`{"canon":"x","output":{"bad":1}}`)} {
		if _, err := decodeStored(bad); err == nil {
			t.Errorf("decodeStored(%q) accepted", bad)
		}
	}
}
