package service

import "sync"

// flightGroup deduplicates concurrent work on the same cache key: the
// first caller to join a key becomes the leader and computes; followers
// block on the call's done channel and share the leader's entry. Unlike
// x/sync/singleflight (not vendored here — the module has no external
// dependencies), the leader decides what to publish, and a leader that
// fails publishes an error that followers may react to by retrying as the
// next leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  *entry
	err  error
}

// join returns the call for key and whether the caller is its leader. The
// leader must eventually call either finish or fail exactly once.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// finish publishes the leader's entry and releases the followers.
func (g *flightGroup) finish(key string, c *flightCall, val *entry) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.val = val
	close(c.done)
}

// fail publishes a leader error; followers typically retry join.
func (g *flightGroup) fail(key string, c *flightCall, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.err = err
	close(c.done)
}
