package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"tpq/internal/pattern"
	"tpq/internal/store"
)

// storeQueueDepth bounds the write-behind queue. Persistence is
// best-effort: when the drainer falls behind, new entries are dropped
// (counted in storeDropped) rather than back-pressuring the serving
// path — a dropped put costs a recomputation after a restart, nothing
// more.
const storeQueueDepth = 256

// storedEntry is the persisted form of one cache entry. Canon is the
// full canonical form, not just its fingerprint: it lets warm-start
// rebuild the exact LRU key and lets every decode path reject a
// fingerprint collision (or a corrupt record that slipped past the
// CRC) by comparing canonical forms directly.
type storedEntry struct {
	Canon         string          `json:"canon"`
	Output        json.RawMessage `json:"output"`
	InputSize     int             `json:"inputSize"`
	OutputSize    int             `json:"outputSize"`
	CDMRemoved    int             `json:"cdmRemoved"`
	ACIMRemoved   int             `json:"acimRemoved"`
	Unsatisfiable bool            `json:"unsatisfiable,omitempty"`
}

// encodeStored serializes one cache entry for the persistent tier and
// the peer-fetch wire (they share the codec byte for byte).
func encodeStored(e *entry) ([]byte, error) {
	out, err := json.Marshal(e.out)
	if err != nil {
		return nil, err
	}
	return json.Marshal(storedEntry{
		Canon:         e.canon,
		Output:        out,
		InputSize:     e.rep.InputSize,
		OutputSize:    e.rep.OutputSize,
		CDMRemoved:    e.rep.CDMRemoved,
		ACIMRemoved:   e.rep.ACIMRemoved,
		Unsatisfiable: e.rep.Unsatisfiable,
	})
}

// decodeStored is the inverse of encodeStored. The pattern decode
// validates structure (pattern.UnmarshalJSON rejects malformed trees),
// so a successfully decoded entry is always a servable one.
func decodeStored(val []byte) (*entry, error) {
	var se storedEntry
	if err := json.Unmarshal(val, &se); err != nil {
		return nil, err
	}
	if se.Canon == "" || len(se.Output) == 0 {
		return nil, fmt.Errorf("service: stored entry missing canon or output")
	}
	p := &pattern.Pattern{}
	if err := json.Unmarshal(se.Output, p); err != nil {
		return nil, err
	}
	return &entry{
		canon: se.Canon,
		out:   p,
		rep: Report{
			InputSize:     se.InputSize,
			OutputSize:    se.OutputSize,
			CDMRemoved:    se.CDMRemoved,
			ACIMRemoved:   se.ACIMRemoved,
			Unsatisfiable: se.Unsatisfiable,
		},
	}, nil
}

// storeKey builds the fixed-size persistent key for a canonical form:
// the raw constraint-set digest followed by the raw pattern digest —
// the same bytes store.EncodeKey produces from the hex fingerprints.
func (s *Service) storeKey(canon string) []byte {
	sum := sha256.Sum256([]byte(canon))
	key := make([]byte, 0, store.KeySize)
	key = append(key, s.fpRaw...)
	key = append(key, sum[:store.KeySize/2]...)
	return key
}

// storeWrite is one queued write-behind put.
type storeWrite struct {
	key, val []byte
}

// drainStore is the write-behind goroutine: it applies queued puts to
// the persistent tier until the queue is closed at shutdown.
func (s *Service) drainStore() {
	defer close(s.storeDone)
	for w := range s.storeQ {
		if err := s.store.Put(w.key, w.val); err != nil {
			s.stats.storeErrors.Add(1)
		} else {
			s.stats.storePuts.Add(1)
		}
	}
}

// storeEnqueue hands a freshly computed entry to the write-behind
// queue. Never blocks: a full queue drops the put and counts it.
func (s *Service) storeEnqueue(e *entry) {
	if s.storeQ == nil {
		return
	}
	val, err := encodeStored(e)
	if err != nil {
		s.stats.storeErrors.Add(1)
		return
	}
	select {
	case s.storeQ <- storeWrite{key: s.storeKey(e.canon), val: val}:
	default:
		s.stats.storeDropped.Add(1)
	}
}

// storeGet is the second lookup tier: the local persistent store.
// A decoded entry whose canonical form does not match the request is a
// fingerprint collision — served as a miss, never as a wrong answer.
func (s *Service) storeGet(canon string) (*entry, bool) {
	if s.store == nil {
		return nil, false
	}
	val, ok := s.store.Get(s.storeKey(canon))
	if !ok {
		s.stats.storeMisses.Add(1)
		return nil, false
	}
	e, err := decodeStored(val)
	if err != nil || e.canon != canon {
		s.stats.storeErrors.Add(1)
		s.stats.storeMisses.Add(1)
		return nil, false
	}
	s.stats.storeHits.Add(1)
	return e, true
}

// peerGet is the third lookup tier: ask the key's owner in the fleet.
// Only called when this node is not the owner; the owner answers from
// its own tiers only (single hop), so a peer miss is definitive.
// Fetched entries populate this node's LRU but not its store — the
// owner persists them, and duplicating them here would defeat the
// sharding.
func (s *Service) peerGet(ctx context.Context, canon string) (*entry, bool) {
	if s.ring == nil {
		return nil, false
	}
	key := s.storeKey(canon)
	owner := s.ring.Owner(key)
	if owner == s.self {
		return nil, false
	}
	s.stats.peerFetches.Add(1)
	body, ok, err := s.peerClient.FetchEntry(ctx, owner, key)
	if err != nil {
		s.stats.peerErrors.Add(1)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	e, err := decodeStored(body)
	if err != nil || e.canon != canon {
		s.stats.peerErrors.Add(1)
		return nil, false
	}
	s.stats.peerHits.Add(1)
	return e, true
}

// LookupEncoded serves the shard peer-fetch protocol: the entry under
// a raw store key, in the persisted wire encoding, answered strictly
// from this node's own tiers (LRU first, then store — never a forward,
// never a compute). This is what keeps peer fetches single-hop.
func (s *Service) LookupEncoded(key []byte) ([]byte, bool) {
	if len(key) != store.KeySize {
		return nil, false
	}
	s.mu.Lock()
	var e *entry
	if s.cache != nil {
		e = s.cache.getByFP(string(key))
	}
	s.mu.Unlock()
	if e != nil {
		if val, err := encodeStored(e); err == nil {
			return val, true
		}
	}
	if s.store != nil {
		if val, ok := s.store.Get(key); ok {
			return val, true
		}
	}
	return nil, false
}

// warmStart pre-populates the LRU from the persistent tier: the limit
// most recently written entries under this service's constraint-set
// prefix (limit < 0 means up to the cache capacity), inserted oldest
// first so the hottest entry ends up most recently used. Runs once,
// at construction, before any request is admitted.
func (s *Service) warmStart(limit int) {
	if limit == 0 || s.cache == nil || s.store == nil {
		return
	}
	if limit < 0 || limit > s.cache.cap {
		limit = s.cache.cap
	}
	type cand struct {
		key, val []byte
		seq      uint64
	}
	var cands []cand
	s.store.Scan(s.fpRaw, func(key, val []byte, seq uint64) bool {
		cands = append(cands, cand{key: key, val: val, seq: seq})
		return true
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	if len(cands) > limit {
		cands = cands[:limit]
	}
	for i := len(cands) - 1; i >= 0; i-- {
		e, err := decodeStored(cands[i].val)
		if err != nil {
			s.stats.storeErrors.Add(1)
			continue
		}
		s.mu.Lock()
		s.cache.add(e.canon+"\x00"+s.fp, string(cands[i].key), e)
		s.mu.Unlock()
		s.stats.warmStarted.Add(1)
	}
}

// decodeFingerprint turns the hex constraint fingerprint into the raw
// key prefix once, at construction.
func decodeFingerprint(fp string) []byte {
	raw, err := hex.DecodeString(fp)
	if err != nil || len(raw) != store.KeySize/2 {
		return nil
	}
	return raw
}
