package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"tpq/internal/pattern"
	"tpq/internal/store"
)

// storeQueueDepth bounds the write-behind queue. Persistence is
// best-effort: when the drainer falls behind, new entries are dropped
// (counted in storeDropped) rather than back-pressuring the serving
// path — a dropped put costs a recomputation after a restart, nothing
// more.
const storeQueueDepth = 256

// storedEntry is the persisted form of one cache entry. Canon is the
// full canonical form, not just its fingerprint: it lets warm-start
// rebuild the exact LRU key and lets every decode path reject a
// fingerprint collision (or a corrupt record that slipped past the
// CRC) by comparing canonical forms directly.
type storedEntry struct {
	Canon         string          `json:"canon"`
	Output        json.RawMessage `json:"output"`
	InputSize     int             `json:"inputSize"`
	OutputSize    int             `json:"outputSize"`
	CDMRemoved    int             `json:"cdmRemoved"`
	ACIMRemoved   int             `json:"acimRemoved"`
	Unsatisfiable bool            `json:"unsatisfiable,omitempty"`
	// Tick is the service-global write ticket, assigned at enqueue time.
	// The per-shard drain goroutines race, so the store's own append
	// sequence no longer reflects completion order; warm-start ranks
	// recency by tick instead. Zero on peer-wire encodings and entries
	// written before ticks existed.
	Tick uint64 `json:"tick,omitempty"`
}

// encodeStored serializes one cache entry for the persistent tier and
// the peer-fetch wire (they share the codec byte for byte). tick is the
// write ticket for persisted entries, 0 on the peer wire.
func encodeStored(e *entry, tick uint64) ([]byte, error) {
	out, err := json.Marshal(e.out)
	if err != nil {
		return nil, err
	}
	return json.Marshal(storedEntry{
		Canon:         e.canon,
		Output:        out,
		InputSize:     e.rep.InputSize,
		OutputSize:    e.rep.OutputSize,
		CDMRemoved:    e.rep.CDMRemoved,
		ACIMRemoved:   e.rep.ACIMRemoved,
		Unsatisfiable: e.rep.Unsatisfiable,
		Tick:          tick,
	})
}

// decodeStored is the inverse of encodeStored. The pattern decode
// validates structure (pattern.UnmarshalJSON rejects malformed trees),
// so a successfully decoded entry is always a servable one.
func decodeStored(val []byte) (*entry, error) {
	var se storedEntry
	if err := json.Unmarshal(val, &se); err != nil {
		return nil, err
	}
	if se.Canon == "" || len(se.Output) == 0 {
		return nil, fmt.Errorf("service: stored entry missing canon or output")
	}
	p := &pattern.Pattern{}
	if err := json.Unmarshal(se.Output, p); err != nil {
		return nil, err
	}
	e := &entry{
		canon: se.Canon,
		out:   p,
		rep: Report{
			InputSize:     se.InputSize,
			OutputSize:    se.OutputSize,
			CDMRemoved:    se.CDMRemoved,
			ACIMRemoved:   se.ACIMRemoved,
			Unsatisfiable: se.Unsatisfiable,
		},
	}
	// Decoded entries are about to be cached and served as hits; render
	// their serving state once, here.
	e.finalize()
	return e, nil
}

// storeKey builds the fixed-size persistent key for a canonical form:
// the raw constraint-set digest followed by the raw pattern digest —
// the same bytes store.EncodeKey produces from the hex fingerprints.
func (s *Service) storeKey(canon string) []byte {
	sum := sha256.Sum256([]byte(canon))
	key := make([]byte, 0, store.KeySize)
	key = append(key, s.fpRaw...)
	key = append(key, sum[:store.KeySize/2]...)
	return key
}

// storeWrite is one queued write-behind put.
type storeWrite struct {
	key, val []byte
}

// drainStore is one shard's write-behind goroutine: it applies that
// shard's queued puts to the persistent tier until the queue is closed
// at shutdown. One goroutine per shard, so a slow put serializes only
// its own shard's handoff.
func (s *Service) drainStore(sh *cacheShard) {
	defer close(sh.storeDone)
	for w := range sh.storeQ {
		if err := s.store.Put(w.key, w.val); err != nil {
			s.stats.storeErrors.Add(1)
		} else {
			s.stats.storePuts.Add(1)
		}
	}
}

// storeEnqueue hands a freshly computed entry to its shard's
// write-behind queue. Never blocks: a full queue drops the put and
// counts it.
func (s *Service) storeEnqueue(sh *cacheShard, e *entry) {
	if sh.storeQ == nil {
		return
	}
	val, err := encodeStored(e, s.writeTick.Add(1))
	if err != nil {
		s.stats.storeErrors.Add(1)
		return
	}
	select {
	case sh.storeQ <- storeWrite{key: s.storeKey(e.canon), val: val}:
	default:
		s.stats.storeDropped.Add(1)
	}
}

// storeGet is the second lookup tier: the local persistent store.
// A decoded entry whose canonical form does not match the request is a
// fingerprint collision — served as a miss, never as a wrong answer.
func (s *Service) storeGet(canon string) (*entry, bool) {
	if s.store == nil {
		return nil, false
	}
	val, ok := s.store.Get(s.storeKey(canon))
	if !ok {
		s.stats.storeMisses.Add(1)
		return nil, false
	}
	e, err := decodeStored(val)
	if err != nil || e.canon != canon {
		s.stats.storeErrors.Add(1)
		s.stats.storeMisses.Add(1)
		return nil, false
	}
	s.stats.storeHits.Add(1)
	return e, true
}

// peerGet is the third lookup tier: ask the key's owner in the fleet.
// Only called when this node is not the owner; the owner answers from
// its own tiers only (single hop), so a peer miss is definitive.
// Fetched entries populate this node's LRU but not its store — the
// owner persists them, and duplicating them here would defeat the
// sharding.
func (s *Service) peerGet(ctx context.Context, canon string) (*entry, bool) {
	if s.ring == nil {
		return nil, false
	}
	key := s.storeKey(canon)
	owner := s.ring.Owner(key)
	if owner == s.self {
		return nil, false
	}
	s.stats.peerFetches.Add(1)
	body, ok, err := s.peerClient.FetchEntry(ctx, owner, key)
	if err != nil {
		s.stats.peerErrors.Add(1)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	e, err := decodeStored(body)
	if err != nil || e.canon != canon {
		s.stats.peerErrors.Add(1)
		return nil, false
	}
	s.stats.peerHits.Add(1)
	return e, true
}

// LookupEncoded serves the shard peer-fetch protocol: the entry under
// a raw store key, in the persisted wire encoding, answered strictly
// from this node's own tiers (LRU first, then store — never a forward,
// never a compute). This is what keeps peer fetches single-hop.
func (s *Service) LookupEncoded(key []byte) ([]byte, bool) {
	if len(key) != store.KeySize {
		return nil, false
	}
	// The store key does not determine the cache shard (that hash covers
	// the canonical form, which only the entry knows), so scan the
	// shards' byFP indexes; peer fetches are rare and the shard count is
	// small.
	var e *entry
	fp := string(key)
	for _, sh := range s.shards {
		sh.mu.Lock()
		e = sh.lru.getByFP(fp)
		sh.mu.Unlock()
		if e != nil {
			break
		}
	}
	if e != nil {
		if val, err := encodeStored(e, 0); err == nil {
			return val, true
		}
	}
	if s.store != nil {
		if val, ok := s.store.Get(key); ok {
			return val, true
		}
	}
	return nil, false
}

// initWriteTick seeds the write ticket from the largest tick already
// persisted under this constraint set, so ticks written after a restart
// rank above every existing entry. Runs once, at construction, before
// the drain goroutines start.
func (s *Service) initWriteTick() {
	max := uint64(0)
	s.store.Scan(s.fpRaw, func(_, val []byte, _ uint64) bool {
		var meta struct {
			Tick uint64 `json:"tick"`
		}
		if json.Unmarshal(val, &meta) == nil && meta.Tick > max {
			max = meta.Tick
		}
		return true
	})
	s.writeTick.Store(max)
}

// warmStart pre-populates the LRU from the persistent tier: the limit
// most recently written entries under this service's constraint-set
// prefix (limit < 0 means up to the cache capacity), inserted oldest
// first so the hottest entry ends up most recently used. Runs once,
// at construction, before any request is admitted.
func (s *Service) warmStart(limit int) {
	if limit == 0 || len(s.shards) == 0 || s.store == nil {
		return
	}
	_, totalCap := s.cacheLenCap()
	if limit < 0 || limit > totalCap {
		limit = totalCap
	}
	type cand struct {
		key, val []byte
		seq      uint64
		tick     uint64
	}
	var cands []cand
	s.store.Scan(s.fpRaw, func(key, val []byte, seq uint64) bool {
		var meta struct {
			Tick uint64 `json:"tick"`
		}
		_ = json.Unmarshal(val, &meta)
		cands = append(cands, cand{key: key, val: val, seq: seq, tick: meta.Tick})
		return true
	})
	// Rank by write ticket (assigned in request-completion order), falling
	// back to the store's append sequence for pre-tick records; the store
	// sequence alone is scrambled by the racing per-shard drains.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tick != cands[j].tick {
			return cands[i].tick > cands[j].tick
		}
		return cands[i].seq > cands[j].seq
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	for i := len(cands) - 1; i >= 0; i-- {
		e, err := decodeStored(cands[i].val)
		if err != nil {
			s.stats.storeErrors.Add(1)
			continue
		}
		key := e.canon + "\x00" + s.fp
		sh := s.shardForString(key)
		sh.mu.Lock()
		sh.lru.add(key, string(cands[i].key), e)
		sh.mu.Unlock()
		s.stats.warmStarted.Add(1)
	}
}

// decodeFingerprint turns the hex constraint fingerprint into the raw
// key prefix once, at construction.
func decodeFingerprint(fp string) []byte {
	raw, err := hex.DecodeString(fp)
	if err != nil || len(raw) != store.KeySize/2 {
		return nil
	}
	return raw
}
