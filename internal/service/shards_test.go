package service

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tpq/internal/genquery"
	"tpq/internal/pattern"
	"tpq/internal/store"
)

// TestShardHashAgreement pins that the []byte and string forms of the
// shard hash agree — the warm-start insert path hashes key strings
// while the request path hashes pooled key bytes, and any divergence
// silently strands entries in a shard no lookup visits.
func TestShardHashAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		q := genquery.Random(rng, 3+rng.Intn(12), 6)
		key := q.Canonical() + "\x00" + "deadbeef"
		if shardHash([]byte(key)) != shardHashString(key) {
			t.Fatalf("shardHash and shardHashString disagree on %q", key)
		}
	}
}

// TestShardBalance pins the fingerprint distribution over the shard
// space: canonical-form cache keys — which all share the same constraint
// fingerprint suffix, the adversarial case for FNV's low bits — must
// spread evenly over 16 shards. The band is generous (every shard
// within 0.5x-1.5x of the mean, about 3 sigma at this sample size) so
// the test pins the mixing step, not the luck of one seed.
func TestShardBalance(t *testing.T) {
	const shardCount = 16
	const keys = 4096
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, shardCount)
	seen := make(map[string]bool, keys)
	for len(seen) < keys {
		q := genquery.Random(rng, 3+rng.Intn(14), 8)
		key := q.Canonical() + "\x00" + "0123456789abcdef0123456789abcdef"
		if seen[key] {
			continue
		}
		seen[key] = true
		counts[shardHash([]byte(key))&(shardCount-1)]++
	}
	mean := float64(keys) / shardCount
	for i, c := range counts {
		if float64(c) < 0.5*mean || float64(c) > 1.5*mean {
			t.Errorf("shard %d holds %d keys, outside [%.0f, %.0f] (mean %.0f): %v",
				i, c, 0.5*mean, 1.5*mean, mean, counts)
		}
	}
}

// TestShardedCacheCloseHammer interleaves everything the sharded tier
// does at once — lookups, misses, evictions (tiny per-shard capacity),
// write-behind enqueues and drains, exact-text fast-path reads and
// registrations over HTTP, and a Close racing the lot. Run under -race
// by `make race-service`; the assertions are liveness and error
// discipline, the detector checks the locking.
func TestShardedCacheCloseHammer(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := New(Options{CacheSize: 8, Store: st})
	h := NewHandler(svc, HandlerOptions{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	queries := make([]*pattern.Pattern, 32)
	for i := range queries {
		queries[i] = pattern.MustParse(fmt.Sprintf("h%d*[/a, //b]", i))
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				_, _, err := svc.Minimize(ctx, queries[rng.Intn(len(queries))])
				if err != nil {
					if err == ErrClosed {
						return
					}
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Two clients hammer the HTTP path with repeating text, racing the
	// text index's reads and registrations against the evictions above.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"query": "h%d*[/a, //b]"}`, g)
			for i := 0; i < 200; i++ {
				resp, err := srv.Client().Post(srv.URL+"/minimize", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode == 503 {
					return
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	snap := svc.Stats()
	if snap.Evictions == 0 {
		t.Error("capacity-8 cache under a 32-query hammer evicted nothing")
	}
	if _, _, err := svc.Minimize(ctx, queries[0]); err != ErrClosed {
		t.Errorf("Minimize after Close returned %v, want ErrClosed", err)
	}
}

// TestMetricsSubMillisecondBuckets pins satellite S1 end to end: the
// /metrics histogram exposes sub-millisecond bucket bounds, and a burst
// of cached hits lands in real interior buckets — under the old 1-2-5
// three-decade layout every µs-scale hit collapsed into the first
// bucket and p50/p99 degenerated to its bound.
func TestMetricsSubMillisecondBuckets(t *testing.T) {
	svc := New(Options{})
	defer svc.Close(context.Background())
	q := pattern.MustParse("m*[/a, //b[/c]]")
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, _, err := svc.Minimize(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var subMillisBounds int
	firstBucket, total := int64(-1), int64(-1)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "tpq_request_duration_seconds_bucket{le=") {
			rest := strings.TrimPrefix(line, "tpq_request_duration_seconds_bucket{le=\"")
			end := strings.Index(rest, "\"")
			boundStr, countStr := rest[:end], strings.TrimSpace(rest[end+2:])
			count, err := strconv.ParseInt(countStr, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if firstBucket < 0 {
				firstBucket = count
			}
			if boundStr != "+Inf" {
				bound, err := strconv.ParseFloat(boundStr, 64)
				if err != nil {
					t.Fatalf("bad bound in %q: %v", line, err)
				}
				if bound < 0.001 {
					subMillisBounds++
				}
			}
		}
		if strings.HasPrefix(line, "tpq_request_duration_seconds_count ") {
			total, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if subMillisBounds < 10 {
		t.Errorf("only %d sub-millisecond bucket bounds on /metrics, want a real sub-ms ladder", subMillisBounds)
	}
	if total < 50 {
		t.Fatalf("histogram counted %d requests, want >= 50", total)
	}
	if firstBucket >= total {
		t.Errorf("all %d requests collapsed into the first bucket — cached hits are not resolved by the layout", total)
	}
}
