package acim

import (
	"math/rand"
	"testing"

	"tpq/internal/ics"
	"tpq/internal/pattern"
)

func TestVirtualMatchesPhysicalOnPaperExamples(t *testing.T) {
	cases := []struct {
		q    string
		cs   []ics.Constraint
		want string
	}{
		{
			fig2b,
			[]ics.Constraint{ics.Desc("Section", "Paragraph")},
			fig2e,
		},
		{
			fig2a,
			[]ics.Constraint{ics.Child("Article", "Title"), ics.Desc("Section", "Paragraph")},
			fig2e,
		},
		{
			fig2f,
			[]ics.Constraint{ics.Co("PermEmp", "Employee"), ics.Co("DBproject", "Project")},
			fig2g,
		},
		{
			"Book*[/Title, /Author, /Publisher]",
			[]ics.Constraint{ics.Child("Book", "Publisher")},
			"Book*[/Title, /Author]",
		},
	}
	for _, c := range cases {
		got := MinimizeVirtual(mp(c.q), ics.NewSet(c.cs...))
		if !pattern.Isomorphic(got, mp(c.want)) {
			t.Errorf("MinimizeVirtual(%s) = %s, want %s", c.q, got, c.want)
		}
	}
}

func TestVirtualMatchesPhysicalRandomized(t *testing.T) {
	// The two ACIM engines must compute isomorphic minimal queries on
	// every input (both implement the unique minimum of Theorem 5.1).
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 300; i++ {
		q, cs := randomSetup(rng, 1+rng.Intn(9), rng.Intn(6))
		closed := cs.Closure()
		phys := Minimize(q, closed)
		virt := MinimizeVirtual(q, closed)
		if !pattern.Isomorphic(phys, virt) {
			t.Fatalf("iter %d: engines disagree\nq = %s\ncs = %s\nphysical = %s\nvirtual  = %s",
				i, q, cs, phys, virt)
		}
	}
}

func TestVirtualStats(t *testing.T) {
	q := mp("a*[//b, //b]")
	cs := ics.NewSet(ics.Desc("a", "b"))
	got, st := MinimizeVirtualWithStats(q, cs)
	if !pattern.Isomorphic(got, mp("a*")) {
		t.Fatalf("result = %s", got)
	}
	if st.Augmented == 0 {
		t.Error("no virtual witnesses counted")
	}
	if st.AugmentedSize != q.Size()+st.Augmented {
		t.Errorf("AugmentedSize = %d, want %d", st.AugmentedSize, q.Size()+st.Augmented)
	}
	if st.Removed != 2 {
		t.Errorf("Removed = %d, want 2", st.Removed)
	}
	if st.TotalTime <= 0 || st.TablesTime <= 0 {
		t.Errorf("timings not populated: %+v", st)
	}
}

func TestVirtualLeavesNoResidue(t *testing.T) {
	// Virtual augmentation must never materialize witnesses in the output.
	q := mp("a*[/b, //c]")
	cs := ics.NewSet(ics.Child("a", "b"), ics.Desc("a", "c"), ics.Co("b", "c"))
	out := MinimizeVirtual(q, cs.Closure())
	out.Walk(func(n *pattern.Node) {
		if n.Temp || len(n.TempExtra) > 0 {
			t.Errorf("residual temporary state on %q", n.Type)
		}
	})
	if err := out.Validate(); err != nil {
		t.Errorf("invalid output: %v", err)
	}
}

func TestVirtualNilConstraints(t *testing.T) {
	q := mp("a*[/b, /b]")
	got := MinimizeVirtual(q, nil)
	if !pattern.Isomorphic(got, mp("a*/b")) {
		t.Errorf("MinimizeVirtual without constraints = %s", got)
	}
}

func TestEntityPredicates(t *testing.T) {
	cs := ics.NewSet(ics.Co("b", "c")).Closure()
	n := pattern.NewNode("b")
	e := realEnt(n)
	if !e.hasType("b", cs) || !e.hasType("c", cs) || e.hasType("z", cs) {
		t.Error("real entity type closure wrong")
	}
	w := entity{w: &witness{owner: n, kind: pattern.Child, typ: "b"}}
	if !w.hasType("c", cs) || w.hasType("z", cs) || w.star() {
		t.Error("virtual entity predicates wrong")
	}
}
