package acim

import (
	"testing"

	"tpq/internal/data"
	"tpq/internal/ics"
	"tpq/internal/match"
)

func TestForbidConstraintParsing(t *testing.T) {
	cs := ics.MustParseSet("Leaf !-> Section", "Title !=> Paragraph")
	if !cs.HasForbidChild("Leaf", "Section") {
		t.Error("!-> not parsed")
	}
	if !cs.HasForbidDesc("Title", "Paragraph") {
		t.Error("!=> not parsed")
	}
	// Round trip via String.
	for _, c := range cs.Constraints() {
		if back := ics.MustParse(c.String()); back != c {
			t.Errorf("round trip of %v gave %v", c, back)
		}
	}
}

func TestForbidClosure(t *testing.T) {
	closed := ics.NewSet(
		ics.ForbidDesc("a", "b"),
		ics.Co("a2", "a"),
		ics.Co("b2", "b"),
	).Closure()
	if !closed.HasForbidChild("a", "b") {
		t.Error("!=> should imply !->")
	}
	if !closed.HasForbidDesc("a2", "b") {
		t.Error("forbidden form not inherited by subtype of the source")
	}
	if !closed.HasForbidDesc("a", "b2") {
		t.Error("forbidden form not extended to subtype of the target")
	}
	if !closed.HasForbidDesc("a2", "b2") {
		t.Error("combined subtype propagation missing")
	}
}

func TestEmptyTypes(t *testing.T) {
	cases := []struct {
		name  string
		cs    []ics.Constraint
		empty []string
		alive []string
	}{
		{
			"direct contradiction",
			[]ics.Constraint{ics.Child("a", "b"), ics.ForbidChild("a", "b")},
			[]string{"a"}, []string{"b"},
		},
		{
			"required desc vs forbidden desc",
			[]ics.Constraint{ics.Desc("a", "b"), ics.ForbidDesc("a", "b")},
			[]string{"a"}, []string{"b"},
		},
		{
			"requirement of an empty type propagates",
			[]ics.Constraint{
				ics.Child("a", "b"), ics.ForbidChild("a", "b"), // a empty
				ics.Child("c", "a"), // c requires a
				ics.Co("d", "c"),    // d is a c
			},
			[]string{"a", "c", "d"}, []string{"b"},
		},
		{
			"no contradiction",
			[]ics.Constraint{ics.Child("a", "b"), ics.ForbidChild("a", "c")},
			nil, []string{"a", "b", "c"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			empty := ics.NewSet(c.cs...).Closure().EmptyTypes()
			for _, e := range c.empty {
				if !empty[ics.MustParse(e+" ~ zzz").From] {
					t.Errorf("%s should be empty (got %v)", e, empty)
				}
			}
			for _, a := range c.alive {
				if empty[ics.MustParse(a+" ~ zzz").From] {
					t.Errorf("%s should not be empty", a)
				}
			}
		})
	}
}

func TestUnsatisfiableUnder(t *testing.T) {
	cases := []struct {
		name  string
		q     string
		cs    []ics.Constraint
		unsat bool
	}{
		{
			"forbidden c-child in the query",
			"a*/b", []ics.Constraint{ics.ForbidChild("a", "b")}, true,
		},
		{
			"forbidden descendant at distance",
			"a*/x//b", []ics.Constraint{ics.ForbidDesc("a", "b")}, true,
		},
		{
			"forbidden child does not fire at distance",
			"a*/x/b", []ics.Constraint{ics.ForbidChild("a", "b")}, false,
		},
		{
			"forbidden descendant fires on a c-child too",
			"a*/b", []ics.Constraint{ics.ForbidDesc("a", "b")}, true,
		},
		{
			"empty type in the query",
			"x*//a", []ics.Constraint{ics.Child("a", "b"), ics.ForbidChild("a", "b")}, true,
		},
		{
			"conflict through the chase",
			// x requires a b descendant; w forbids b below it.
			"w*//x",
			[]ics.Constraint{ics.Desc("x", "b"), ics.ForbidDesc("w", "b")},
			true,
		},
		{
			"conflict through co-occurrence",
			"w*/e",
			[]ics.Constraint{ics.Co("e", "b"), ics.ForbidChild("w", "b")},
			true,
		},
		{
			"satisfiable",
			"a*[/b, //c]", []ics.Constraint{ics.ForbidChild("b", "c")}, false,
		},
		{
			"no constraints",
			"a*/b", nil, false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := UnsatisfiableUnder(mp(c.q), ics.NewSet(c.cs...))
			if got != c.unsat {
				t.Errorf("UnsatisfiableUnder(%s, %v) = %v, want %v", c.q, c.cs, got, c.unsat)
			}
		})
	}
}

func TestUnsatQueriesReallyMatchNothing(t *testing.T) {
	// Soundness spot-check: a forest satisfying the constraints gives no
	// answers for a query flagged unsatisfiable.
	q := mp("a*/x//b")
	cs := ics.NewSet(ics.ForbidDesc("a", "b"))
	if !UnsatisfiableUnder(q, cs) {
		t.Fatal("expected unsatisfiable")
	}
	// Build a forest with a, x, b placed legally: b never below a.
	root := data.NewNode("r")
	a := root.Child("a")
	a.Child("x")
	root.Child("b") // b is a sibling subtree, not below a
	f := data.NewForest(root)
	if len(data.Violations(f, cs.Closure())) != 0 {
		t.Skip("test forest violates the constraint set")
	}
	if got := match.Count(q, f); got != 0 {
		t.Errorf("unsatisfiable query matched %d nodes", got)
	}
}
