package acim

import (
	"math/rand"
	"testing"

	"tpq/internal/ics"
	"tpq/internal/pattern"
)

// TestACIMGloballyMinimalBruteForce enumerates, for small random queries,
// every sub-query (obtained by deleting whole subtrees that do not contain
// the output node) and finds the smallest one equivalent to the original
// under the constraints. ACIM must return a query of exactly that size —
// Theorem 5.1's global optimality, checked against an exhaustive oracle.
func TestACIMGloballyMinimalBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	interesting := 0
	for i := 0; i < 80; i++ {
		q, cs := randomSetup(rng, 2+rng.Intn(5), 1+rng.Intn(4))
		closed := cs.Closure()
		best := q.Size()
		for _, sub := range subQueries(q) {
			if sub.Size() < best && EquivalentUnder(sub, q, closed) {
				best = sub.Size()
			}
		}
		got := Minimize(q, closed).Size()
		if got != best {
			t.Fatalf("iter %d: ACIM size %d, brute force found %d\nq = %s\ncs = %s",
				i, got, best, q, cs)
		}
		if best < q.Size() {
			interesting++
		}
	}
	if interesting == 0 {
		t.Fatal("no query shrank; oracle exercised nothing")
	}
}

// subQueries returns every pattern obtainable from q by deleting whole
// subtrees, never deleting the output node (or, therefore, its ancestors).
// The original query itself is included.
func subQueries(q *pattern.Pattern) []*pattern.Pattern {
	// Deletable subtree roots: nodes that are not the star and do not
	// contain the star. Enumerate all subsets of an antichain implicitly:
	// recursively, for each node, either delete it (with its subtree) or
	// keep it and recurse into children.
	var out []*pattern.Pattern

	containsStar := func(n *pattern.Node) bool {
		found := false
		var rec func(*pattern.Node)
		rec = func(m *pattern.Node) {
			if m.Star {
				found = true
			}
			for _, c := range m.Children {
				rec(c)
			}
		}
		rec(n)
		return found
	}

	// build recursively constructs all variants of the subtree rooted at n.
	var build func(n *pattern.Node) []*pattern.Node
	build = func(n *pattern.Node) []*pattern.Node {
		// Variants of each child: absent (if deletable) plus every
		// structural variant.
		type choice []*pattern.Node // one option list per child
		childOptions := make([]choice, len(n.Children))
		for i, c := range n.Children {
			var opts choice
			if !containsStar(c) {
				opts = append(opts, nil) // delete the whole subtree
			}
			opts = append(opts, build(c)...)
			childOptions[i] = opts
		}
		// Cartesian product over child options.
		variants := []*pattern.Node{}
		var assemble func(i int, picked []*pattern.Node)
		assemble = func(i int, picked []*pattern.Node) {
			if i == len(childOptions) {
				clone := &pattern.Node{Type: n.Type, Star: n.Star,
					Extra: append([]pattern.Type(nil), n.Extra...)}
				for _, ch := range picked {
					if ch == nil {
						continue
					}
					cc := ch // already a fresh clone
					cc.Parent = clone
					clone.Children = append(clone.Children, cc)
				}
				variants = append(variants, clone)
				return
			}
			for _, opt := range childOptions[i] {
				var cp *pattern.Node
				if opt != nil {
					cp = deepCopy(opt)
					cp.Edge = n.Children[i].Edge
				}
				assemble(i+1, append(picked, cp))
			}
		}
		assemble(0, nil)
		return variants
	}

	for _, root := range build(q.Root) {
		out = append(out, pattern.New(root))
	}
	return out
}

func deepCopy(n *pattern.Node) *pattern.Node {
	c := &pattern.Node{Type: n.Type, Star: n.Star, Edge: n.Edge,
		Extra: append([]pattern.Type(nil), n.Extra...)}
	for _, ch := range n.Children {
		cc := deepCopy(ch)
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Keep the ics import honest if randomSetup's signature changes.
var _ = ics.NewSet
