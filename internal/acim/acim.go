// Package acim implements Algorithm ACIM (Section 5.2-5.3 of the paper):
// constraint-dependent minimization of a tree pattern query by
// augmentation followed by constraint-independent minimization.
//
// ACIM runs three steps:
//
//  1. Augment the query with respect to the logical closure of the given
//     integrity constraints (package chase). Added nodes and type
//     associations are temporary: witnesses for containment mappings, never
//     requirements, never candidates for elimination.
//  2. Run CIM (package cim) on the augmented query. Temporary nodes widen
//     the image sets, exposing redundancies that only hold under the
//     constraints.
//  3. Strip the temporary nodes and type associations.
//
// Theorem 5.1: for required-child, required-descendant and co-occurrence
// constraints the minimal equivalent query under the constraints is unique,
// and ACIM finds it. ACIM is a direct implementation of the optimal
// strategy A·M·R of Lemma 5.4 (augment, minimize, reduce); the package also
// provides Reduce and ApplyStrategy so the lemmas' identities can be
// exercised directly.
package acim

import (
	"time"

	"tpq/internal/chase"
	"tpq/internal/cim"
	"tpq/internal/containment"
	"tpq/internal/ics"
	"tpq/internal/pattern"
	"tpq/internal/trace"
)

// Stats describes an ACIM run.
type Stats struct {
	// Augmented is the number of temporary nodes added.
	Augmented int
	// AugmentedSize is the query size after augmentation (permanent +
	// temporary nodes).
	AugmentedSize int
	// Removed is the number of permanent nodes eliminated.
	Removed int
	// Tests is the number of leaf-redundancy tests run by the CIM phase.
	Tests int
	// TablesBuilt and TablesDerived split the CIM phase's images tables
	// into full constructions and tables derived from a run's master state
	// by interval masking (see cim.Stats); TablesDerived : TablesBuilt is
	// the amortization ratio of the incremental engine.
	TablesBuilt, TablesDerived int
	// TablesTime is the time spent building images and ancestor/descendant
	// tables (Figure 7(b) reports this fraction of TotalTime).
	TablesTime time.Duration
	// AugmentTime is the time spent in the augmentation step, including
	// closing the constraint set if it was not already closed.
	AugmentTime time.Duration
	// TotalTime is the wall-clock time of the whole run.
	TotalTime time.Duration
}

// Minimize returns the unique minimal query equivalent to p under cs,
// leaving p untouched. cs need not be closed.
func Minimize(p *pattern.Pattern, cs *ics.Set) *pattern.Pattern {
	q, _ := MinimizeWithStats(p, cs)
	return q
}

// MinimizeWithStats is Minimize with run statistics.
func MinimizeWithStats(p *pattern.Pattern, cs *ics.Set) (*pattern.Pattern, Stats) {
	return MinimizeWithOptions(p, cs, cim.Options{})
}

// MinimizeWithOptions is MinimizeWithStats with explicit options for the
// CIM phase. The batch engine uses it to route each worker's redundancy
// tests through that worker's scratch arena.
func MinimizeWithOptions(p *pattern.Pattern, cs *ics.Set, opts cim.Options) (*pattern.Pattern, Stats) {
	return MinimizeWithRunner(p, cs, func(q *pattern.Pattern) cim.Stats {
		return cim.MinimizeInPlace(q, opts)
	})
}

// MinimizeWithRunner is MinimizeWithOptions with the CIM phase supplied by
// the caller: run receives the augmented query and minimizes it in place.
// The engine package injects its parallel screening loop here, so the
// concurrency policy lives with the worker pool while augmentation and
// temporary-stripping stay in one place.
func MinimizeWithRunner(p *pattern.Pattern, cs *ics.Set, run func(*pattern.Pattern) cim.Stats) (*pattern.Pattern, Stats) {
	return MinimizeWithRunnerTraced(p, cs, nil, run)
}

// MinimizeWithRunnerTraced is MinimizeWithRunner recording the run into
// tr: the whole pipeline under the ACIM phase, augmentation under the
// nested Chase phase, the temporary strip under Compact, and removals
// under the ACIMRemoved counter. The runner is expected to meter the CIM
// phase itself (cim.MinimizeInPlace and the engine's screening loop do,
// via cim.Stats.Record), so Chase + CIM + Compact nest inside — and sum
// to at most — ACIM. tr may be nil (then it is exactly
// MinimizeWithRunner).
func MinimizeWithRunnerTraced(p *pattern.Pattern, cs *ics.Set, tr *trace.Trace, run func(*pattern.Pattern) cim.Stats) (*pattern.Pattern, Stats) {
	var st Stats
	sp := tr.Start(trace.ACIM)
	start := time.Now()
	q := p.Clone()
	if cs == nil {
		cs = ics.NewSet()
	}

	// Augment through the precompiled chase plan: the registry closes the
	// set and compiles once per fingerprint, so repeat minimizations under
	// one schema pay a map probe plus work proportional to the query. The
	// per-call chase.Augment stays as the cross-validated oracle (see
	// internal/difffuzz).
	tAug := time.Now()
	pl := chase.PlanForTraced(cs, tr)
	st.Augmented = pl.AugmentTraced(q, tr)
	st.AugmentTime = time.Since(tAug)
	st.AugmentedSize = q.Size()

	cimStats := run(q)
	st.Removed = cimStats.Removed
	st.Tests = cimStats.Tests
	st.TablesBuilt = cimStats.TablesBuilt
	st.TablesDerived = cimStats.TablesDerived
	st.TablesTime = cimStats.TablesTime

	spStrip := tr.Start(trace.Compact)
	q.StripTemp()
	spStrip.End()
	st.TotalTime = time.Since(start)
	sp.End()
	tr.Add(trace.ACIMRemoved, st.Removed)
	return q, st
}

// Reduce applies the paper's reduction step R in place: repeatedly delete
// any leaf whose presence is implied by a constraint at its parent — a
// c-child leaf of type T under a parent carrying a type T' with T' -> T, or
// a d-child leaf under a parent with T' => T. A leaf carrying extra types
// is deleted only if the constraint's witness carries them all (via
// co-occurrence in the closed set). Returns the number of nodes removed.
// cs must be closed; Reduce closes it defensively otherwise.
func Reduce(p *pattern.Pattern, cs *ics.Set) int {
	if p == nil || p.Root == nil || cs == nil {
		return 0
	}
	if !cs.IsClosed() {
		cs = cs.Closure()
	}
	removed := 0
	for {
		var victim *pattern.Node
		p.Walk(func(n *pattern.Node) {
			if victim != nil || n.Star || n.Parent == nil || !n.IsLeaf() {
				return
			}
			if leafImplied(n, cs) {
				victim = n
			}
		})
		if victim == nil {
			return removed
		}
		victim.Detach()
		removed++
	}
}

// leafImplied reports whether the leaf's requirement is guaranteed by a
// constraint on one of its parent's types.
func leafImplied(n *pattern.Node, cs *ics.Set) bool {
	if len(n.Conds) > 0 {
		// Constraint witnesses are condition-free; they cannot discharge a
		// leaf with value conditions.
		return false
	}
	for _, pt := range n.Parent.Types() {
		var targets []pattern.Type
		if n.Edge == pattern.Child {
			targets = cs.ChildTargets(pt)
		} else {
			targets = cs.DescTargets(pt)
		}
		for _, b := range targets {
			if witnessCovers(b, n, cs) {
				return true
			}
		}
	}
	return false
}

// witnessCovers reports whether a guaranteed node of type b satisfies every
// type the leaf requires.
func witnessCovers(b pattern.Type, leaf *pattern.Node, cs *ics.Set) bool {
	for _, t := range leaf.Types() {
		if !cs.HasCo(b, t) {
			return false
		}
	}
	return true
}

// ApplyStrategy interprets a strategy string over the alphabet {A, R, M}
// of Section 5.3 on a clone of p: A = augmentation with the added material
// made permanent, R = reduction, M = constraint-independent minimization.
// It exists so tests can check the identities of Lemmas 5.2-5.4 (for
// example: no strategy beats "AMR", and "AMR" is idempotent).
func ApplyStrategy(p *pattern.Pattern, cs *ics.Set, strategy string) *pattern.Pattern {
	q := p.Clone()
	closed := cs.Closure()
	for _, step := range strategy {
		switch step {
		case 'A', 'a':
			chase.Augment(q, closed)
			makePermanent(q)
		case 'R', 'r':
			Reduce(q, closed)
		case 'M', 'm':
			cim.MinimizeInPlace(q, cim.Options{})
		default:
			panic("acim: unknown strategy step " + string(step))
		}
	}
	return q
}

func makePermanent(p *pattern.Pattern) {
	p.Walk(func(n *pattern.Node) {
		n.Temp = false
		n.TempExtra = nil
	})
}

// EquivalentUnder reports whether a and b are equivalent under cs
// (two-way containment under the constraints).
//
// Containment a ⊆_C b is decided by chasing a with the consequences of cs
// that can matter for a mapping b → chase(a), then searching for that
// mapping. Required-edge constraints are kept when their target type is
// wanted in the chase.WantedWitnessTypes sense — the target, one of its
// co-occurrence types, or a type required below it occurs in the pair.
// Filtering by the pair's own types alone is not enough: a constraint
// chain t0 -> t3, t3 ~ t1, t3 -> t5 justifies mapping t1/t5 onto the
// guaranteed t3 child even when t3 occurs in neither query (found by the
// difffuzz equivalence oracle). The chase is bounded at size(b) plus the
// number of kept constraint types plus 2 rounds — enough to build every
// witness chain on an acyclic (after closure) set, so the check is exact
// there; for required-edge cycles — satisfiable only by infinite
// databases — it is sound but may under-approximate.
func EquivalentUnder(a, b *pattern.Pattern, cs *ics.Set) bool {
	closed := cs.Closure()
	return ContainedUnder(a, b, closed) && ContainedUnder(b, a, closed)
}

// ContainedUnder reports a ⊆_C b. cs must be closed; see EquivalentUnder.
func ContainedUnder(a, b *pattern.Pattern, cs *ics.Set) bool {
	relevant := a.TypeSet()
	for t := range b.TypeSet() {
		relevant[t] = true
	}
	// The wanted set comes from the precompiled trigger relation of the
	// pair's chase plan — equivalence judging under one schema reuses the
	// same registry entry the minimization pipeline compiled.
	wanted := chase.PlanFor(cs).Wanted(relevant)
	filtered := ics.NewSet()
	for _, c := range cs.Constraints() {
		switch c.Kind {
		case ics.RequiredChild, ics.RequiredDescendant:
			if wanted[c.To] {
				filtered.Add(c)
			}
		default:
			if relevant[c.To] {
				filtered.Add(c)
			}
		}
	}
	chased := a.Clone()
	chase.FullChase(chased, filtered, b.Size()+len(filtered.Types())+2)
	return containment.Exists(b, chased)
}
