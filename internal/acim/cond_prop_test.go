package acim

import (
	"math/rand"
	"testing"

	"tpq/internal/cdm"
	"tpq/internal/data"
	"tpq/internal/match"
	"tpq/internal/pattern"
)

// Property test for the Section 7 extension: minimization of queries with
// value conditions stays semantically exact. Random conditioned queries,
// random constraint sets, random attribute-carrying databases repaired to
// satisfy the constraints — the minimized query must return the same
// answers.
func TestConditionedMinimizationSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	types := []pattern.Type{"t0", "t1", "t2", "t3", "t4", "t5"}
	attrs := []string{"p", "q"}
	shrunk := 0
	for i := 0; i < 80; i++ {
		q, cs := randomSetup(rng, 1+rng.Intn(7), rng.Intn(4))
		// Sprinkle conditions.
		q.Walk(func(n *pattern.Node) {
			if rng.Intn(3) != 0 {
				return
			}
			op := []pattern.Op{pattern.OpLt, pattern.OpLe, pattern.OpGt, pattern.OpGe, pattern.OpNe}[rng.Intn(5)]
			n.AddCond(pattern.Condition{
				Attr:  attrs[rng.Intn(len(attrs))],
				Op:    op,
				Value: float64(rng.Intn(4)),
			})
		})
		closed := cs.Closure()
		minACIM := Minimize(q, closed)
		minBoth := Minimize(cdm.Minimize(q, closed), closed)
		if minACIM.Size() < q.Size() {
			shrunk++
		}
		if !pattern.Isomorphic(minACIM, minBoth) {
			t.Fatalf("iter %d: CDM pre-filter changed the minimum for conditioned query\nq = %s\ncs = %s\nACIM = %s\nCDM;ACIM = %s",
				i, q, cs, minACIM, minBoth)
		}
		for trial := 0; trial < 5; trial++ {
			var roots []*data.Node
			var all []*data.Node
			for len(all) < 1+rng.Intn(12) {
				var n *data.Node
				if len(all) == 0 || rng.Intn(6) == 0 {
					n = data.NewNode(types[rng.Intn(len(types))])
					roots = append(roots, n)
				} else {
					n = all[rng.Intn(len(all))].Child(types[rng.Intn(len(types))])
				}
				// Random attributes on most nodes.
				for _, a := range attrs {
					if rng.Intn(4) != 0 {
						n.SetAttr(a, float64(rng.Intn(5)))
					}
				}
				all = append(all, n)
			}
			f := data.NewForest(roots...)
			if err := data.Repair(f, closed); err != nil {
				t.Fatal(err)
			}
			want := match.Answers(q, f)
			got := match.Answers(minACIM, f)
			if len(want) != len(got) {
				t.Fatalf("iter %d: conditioned minimization broke equivalence\nq   = %s\nmin = %s\ncs  = %s\ndata:\n%s",
					i, q, minACIM, cs, f)
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("iter %d: answer %d differs", i, j)
				}
			}
		}
	}
	if shrunk == 0 {
		t.Fatal("no conditioned query shrank; distribution degenerate")
	}
}
