package acim

import (
	"testing"

	"tpq/internal/ics"
)

func TestEquivalentUnderBasics(t *testing.T) {
	cases := []struct {
		a, b string
		cs   []string
		want bool
	}{
		{"Book*/Publisher", "Book*", []string{"Book -> Publisher"}, true},
		{"Book*/Publisher", "Book*", nil, false},
		{"Book*//Publisher", "Book*", []string{"Book => Publisher"}, true},
		{"Book*/Publisher", "Book*", []string{"Book => Publisher"}, false},
		// Multi-hop chase: x needs y child, y needs z child; x*//z folds.
		{"x*//z", "x*", []string{"x -> y", "y -> z"}, true},
		// But the child-path version needs the real chain.
		{"x*/y/z", "x*", []string{"x -> y", "y -> z"}, true},
		{"x*/z", "x*", []string{"x -> y", "y -> z"}, false},
		// Co-occurrence: a PermEmp branch satisfies an Employee branch.
		{"Org*[/PermEmp, /Employee]", "Org*/PermEmp", []string{"PermEmp ~ Employee"}, true},
		{"Org*[/PermEmp, /Employee]", "Org*/Employee", []string{"PermEmp ~ Employee"}, false},
	}
	for _, c := range cases {
		cs := ics.MustParseSet(c.cs...)
		got := EquivalentUnder(mp(c.a), mp(c.b), cs)
		if got != c.want {
			t.Errorf("EquivalentUnder(%s, %s, %v) = %v, want %v", c.a, c.b, c.cs, got, c.want)
		}
	}
}

func TestEquivalentUnderCyclicConstraints(t *testing.T) {
	// A cyclic requirement set is satisfiable only by infinite databases.
	// On finite databases the constraint set is vacuous, making all
	// queries over the cycle's types equivalent; the bounded chase agrees
	// on simple instances like this one (and is documented as sound but
	// possibly under-approximating in general).
	cs := ics.MustParseSet("a => b", "b => a")
	if !EquivalentUnder(mp("a*"), mp("a*//b"), cs) {
		t.Error("cyclic-set equivalence not detected on the simple instance")
	}
	if EquivalentUnder(mp("a*"), mp("a*/b"), cs) {
		t.Error("child requirement wrongly discharged by a descendant cycle")
	}
}

func TestContainedUnderDirectionality(t *testing.T) {
	cs := ics.MustParseSet("Book -> Publisher").Closure()
	a, b := mp("Book*/Publisher"), mp("Book*")
	// Both directions hold here (equivalence), but on a strict pair only
	// one does.
	if !ContainedUnder(a, b, cs) || !ContainedUnder(b, a, cs) {
		t.Error("equivalent pair not mutually contained")
	}
	strictSmall, strictBig := mp("Book*"), mp("Book*/Author")
	if !ContainedUnder(strictBig, strictSmall, cs) {
		t.Error("Book*/Author should be contained in Book*")
	}
	if ContainedUnder(strictSmall, strictBig, cs) {
		t.Error("Book* should not be contained in Book*/Author")
	}
}
