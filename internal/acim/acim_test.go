package acim

import (
	"math/rand"
	"testing"

	"tpq/internal/data"
	"tpq/internal/ics"
	"tpq/internal/match"
	"tpq/internal/pattern"
)

func mp(src string) *pattern.Pattern { return pattern.MustParse(src) }

// The Figure 2 queries used by Section 3.3 and Section 5.
var (
	fig2a = "Articles/Article*[/Title, //Paragraph, /Section//Paragraph]"
	fig2b = "Articles/Article*[//Paragraph, /Section//Paragraph]"
	fig2c = "Articles/Article*/Section//Paragraph"
	fig2d = "Articles/Article*[//Paragraph, /Section]"
	fig2e = "Articles/Article*/Section"
	fig2f = "Organization*[/Employee/Project, /PermEmp/DBproject]"
	fig2g = "Organization*/PermEmp/DBproject"
)

func TestPaperSection33FirstExample(t *testing.T) {
	// Figure 2(a) + "Article -> Title": the Title node is redundant, and
	// constraint-independent reasoning then folds //Paragraph into the
	// Section branch; further, nothing else applies: minimal is 2(c).
	cs := ics.NewSet(ics.Child("Article", "Title"))
	got := Minimize(mp(fig2a), cs)
	if !pattern.Isomorphic(got, mp(fig2c)) {
		t.Errorf("ACIM(fig2a, Article->Title) = %s, want %s", got, fig2c)
	}
}

func TestPaperSection33SectionParagraph(t *testing.T) {
	// Figure 2(b) + "Section => Paragraph" must reach 2(e) — the example
	// the paper uses to show that chase-then-CIM without temporaries gets
	// stuck at 2(c) (Section 5.1), while ACIM does not.
	cs := ics.NewSet(ics.Desc("Section", "Paragraph"))
	got := Minimize(mp(fig2b), cs)
	if !pattern.Isomorphic(got, mp(fig2e)) {
		t.Errorf("ACIM(fig2b, Section=>Paragraph) = %s, want %s", got, fig2e)
	}
}

func TestPaperSection33FromD(t *testing.T) {
	// Figure 2(d) is minimal without ICs; with Section => Paragraph the
	// query augments (an extra Paragraph under Section) and minimizes to
	// 2(e).
	cs := ics.NewSet(ics.Desc("Section", "Paragraph"))
	if got := Minimize(mp(fig2d), ics.NewSet()); !pattern.Isomorphic(got, mp(fig2d)) {
		t.Errorf("fig2d shrank without ICs: %s", got)
	}
	got := Minimize(mp(fig2d), cs)
	if !pattern.Isomorphic(got, mp(fig2e)) {
		t.Errorf("ACIM(fig2d, Section=>Paragraph) = %s, want %s", got, fig2e)
	}
}

func TestPaperSection33CoOccurrence(t *testing.T) {
	// Figure 2(f) + PermEmp~Employee, DBproject~Project = Figure 2(g).
	cs := ics.NewSet(ics.Co("PermEmp", "Employee"), ics.Co("DBproject", "Project"))
	got := Minimize(mp(fig2f), cs)
	if !pattern.Isomorphic(got, mp(fig2g)) {
		t.Errorf("ACIM(fig2f, co-occurrence) = %s, want %s", got, fig2g)
	}
}

func TestPaperFullSequenceAtoE(t *testing.T) {
	// With both constraints, 2(a) goes all the way to 2(e).
	cs := ics.NewSet(
		ics.Child("Article", "Title"),
		ics.Desc("Section", "Paragraph"),
	)
	got := Minimize(mp(fig2a), cs)
	if !pattern.Isomorphic(got, mp(fig2e)) {
		t.Errorf("ACIM(fig2a, both ICs) = %s, want %s", got, fig2e)
	}
}

func TestBookPublisherIntro(t *testing.T) {
	// The introduction's example: "find title and author of books that
	// have a publisher" + "every book has a publisher" drops the publisher
	// condition.
	q := mp("Book*[/Title, /Author, /Publisher]")
	cs := ics.NewSet(ics.Child("Book", "Publisher"))
	got := Minimize(q, cs)
	want := mp("Book*[/Title, /Author]")
	if !pattern.Isomorphic(got, want) {
		t.Errorf("ACIM = %s, want %s", got, want)
	}
}

func TestNoConstraintsEqualsCIM(t *testing.T) {
	q := mp("OrgUnit*[/Dept/Researcher//DBProject, //Dept//DBProject]")
	got := Minimize(q, ics.NewSet())
	want := mp("OrgUnit*/Dept/Researcher//DBProject")
	if !pattern.Isomorphic(got, want) {
		t.Errorf("ACIM with no ICs = %s, want %s", got, want)
	}
}

func TestChildConstraintDoesNotRemoveDChildWithChildren(t *testing.T) {
	// a -> b guarantees a bare b child; it cannot discharge b[/c].
	q := mp("a*/b/c")
	cs := ics.NewSet(ics.Child("a", "b"))
	got := Minimize(q, cs)
	if !pattern.Isomorphic(got, q) {
		t.Errorf("ACIM removed constrained subtree: %s", got)
	}
}

func TestDescConstraintDoesNotRemoveCChild(t *testing.T) {
	// a => b guarantees a descendant, which cannot satisfy a c-child
	// requirement.
	q := mp("a*/b")
	cs := ics.NewSet(ics.Desc("a", "b"))
	got := Minimize(q, cs)
	if !pattern.Isomorphic(got, q) {
		t.Errorf("ACIM removed c-child using a descendant constraint: %s", got)
	}
	// But the d-child version is removable.
	q2 := mp("a*//b")
	got2 := Minimize(q2, cs)
	if !pattern.Isomorphic(got2, mp("a*")) {
		t.Errorf("ACIM kept removable d-child: %s", got2)
	}
}

func TestStatsPopulated(t *testing.T) {
	q := mp("a*[//b, //b]")
	cs := ics.NewSet(ics.Desc("a", "b"))
	got, st := MinimizeWithStats(q, cs)
	if !pattern.Isomorphic(got, mp("a*")) {
		t.Fatalf("result = %s", got)
	}
	if st.Augmented == 0 || st.AugmentedSize != 3+st.Augmented {
		t.Errorf("augmentation stats wrong: %+v", st)
	}
	if st.Removed != 2 || st.Tests < 2 {
		t.Errorf("CIM stats wrong: %+v", st)
	}
	if st.TotalTime <= 0 {
		t.Errorf("TotalTime not set: %+v", st)
	}
}

func TestReduce(t *testing.T) {
	// Reduction removes leaves bottom-up when implied by constraints.
	q := mp("a*/b/c")
	cs := ics.NewSet(ics.Child("a", "b"), ics.Child("b", "c"))
	removed := Reduce(q, cs)
	if removed != 2 || q.Size() != 1 {
		t.Errorf("Reduce removed %d, size now %d, want 2 removed size 1", removed, q.Size())
	}
	// Star is never removed.
	q2 := mp("a/b*")
	if Reduce(q2, cs) != 0 {
		t.Error("Reduce removed the output node")
	}
	// A leaf with extra types needs the witness to cover them.
	q3 := mp("a*/b{x}")
	if Reduce(q3, ics.NewSet(ics.Child("a", "b"))) != 0 {
		t.Error("Reduce dropped a leaf with uncovered extra type")
	}
	if Reduce(q3.Clone(), ics.NewSet(ics.Child("a", "b"), ics.Co("b", "x"))) != 1 {
		t.Error("Reduce kept a leaf fully covered via co-occurrence")
	}
}

func TestApplyStrategyIdentities(t *testing.T) {
	// Lemma 5.3: AMR is idempotent.
	q := mp(fig2b)
	cs := ics.NewSet(ics.Desc("Section", "Paragraph"))
	once := ApplyStrategy(q, cs, "AMR")
	twice := ApplyStrategy(once, cs, "AMR")
	if !pattern.Isomorphic(once, twice) {
		t.Errorf("AMR not idempotent: %s then %s", once, twice)
	}
	// AMR equals ACIM (Section 5.3: ACIM is an implementation of AMR).
	acimOut := Minimize(q, cs)
	if !pattern.Isomorphic(once, acimOut) {
		t.Errorf("AMR = %s but ACIM = %s", once, acimOut)
	}
}

func TestApplyStrategyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on unknown strategy step")
		}
	}()
	ApplyStrategy(mp("a*"), ics.NewSet(), "AXR")
}

// randomSetup builds a random query and a random acyclic constraint set
// over the query's type alphabet.
func randomSetup(rng *rand.Rand, qSize, nCons int) (*pattern.Pattern, *ics.Set) {
	types := []pattern.Type{"t0", "t1", "t2", "t3", "t4", "t5"}
	root := pattern.NewNode(types[rng.Intn(3)])
	nodes := []*pattern.Node{root}
	for len(nodes) < qSize {
		parent := nodes[rng.Intn(len(nodes))]
		kind := pattern.Child
		if rng.Intn(2) == 0 {
			kind = pattern.Descendant
		}
		nodes = append(nodes, parent.AddChild(kind, pattern.NewNode(types[rng.Intn(len(types))])))
	}
	nodes[rng.Intn(len(nodes))].Star = true
	cs := ics.NewSet()
	for i := 0; i < nCons; i++ {
		from := rng.Intn(len(types) - 1)
		to := from + 1 + rng.Intn(len(types)-from-1)
		switch rng.Intn(3) {
		case 0:
			cs.Add(ics.Child(types[from], types[to]))
		case 1:
			cs.Add(ics.Desc(types[from], types[to]))
		default:
			cs.Add(ics.Co(types[from], types[to]))
		}
	}
	return pattern.New(root), cs
}

func TestACIMSemanticEquivalence(t *testing.T) {
	// The minimized query answers exactly like the original on databases
	// satisfying the constraints.
	rng := rand.New(rand.NewSource(31))
	types := []pattern.Type{"t0", "t1", "t2", "t3", "t4", "t5"}
	for i := 0; i < 80; i++ {
		q, cs := randomSetup(rng, 1+rng.Intn(7), 1+rng.Intn(4))
		min := Minimize(q, cs)
		if min.Size() > q.Size() {
			t.Fatalf("iter %d: ACIM grew the query", i)
		}
		for trial := 0; trial < 6; trial++ {
			f := randomForest(rng, types, 1+rng.Intn(12))
			if err := data.Repair(f, cs); err != nil {
				t.Fatalf("iter %d: repair: %v", i, err)
			}
			a := match.Answers(q, f)
			b := match.Answers(min, f)
			if len(a) != len(b) {
				t.Fatalf("iter %d trial %d: %d vs %d answers\nq   = %s\nmin = %s\ncs  = %s\ndata:\n%s",
					i, trial, len(a), len(b), q, min, cs, f)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("iter %d: answer %d differs", i, j)
				}
			}
		}
	}
}

func TestACIMEquivalentUnderAndIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 120; i++ {
		q, cs := randomSetup(rng, 1+rng.Intn(8), rng.Intn(5))
		min := Minimize(q, cs)
		if !EquivalentUnder(q, min, cs) {
			t.Fatalf("iter %d: ACIM output not equivalent under ICs\nq = %s\nmin = %s\ncs = %s",
				i, q, min, cs)
		}
		again := Minimize(min, cs)
		if !pattern.Isomorphic(again, min) {
			t.Fatalf("iter %d: ACIM not idempotent: %s then %s", i, min, again)
		}
	}
}

func TestNoStrategyBeatsAMR(t *testing.T) {
	// Lemma 5.4: AMR produces the least-size equivalent query among all
	// strategies over {A, R, M}.
	rng := rand.New(rand.NewSource(41))
	steps := []byte{'A', 'R', 'M'}
	for i := 0; i < 60; i++ {
		q, cs := randomSetup(rng, 1+rng.Intn(7), 1+rng.Intn(4))
		best := ApplyStrategy(q, cs, "AMR").Size()
		acimSize := Minimize(q, cs).Size()
		if acimSize != best {
			t.Fatalf("iter %d: ACIM size %d != AMR size %d for %s under %s",
				i, acimSize, best, q, cs)
		}
		for trial := 0; trial < 5; trial++ {
			n := 1 + rng.Intn(4)
			s := make([]byte, n)
			for j := range s {
				s[j] = steps[rng.Intn(3)]
			}
			if got := ApplyStrategy(q, cs, string(s)).Size(); got < best {
				t.Fatalf("iter %d: strategy %q reached size %d < AMR's %d on %s under %s",
					i, s, got, best, q, cs)
			}
		}
	}
}

func randomForest(rng *rand.Rand, types []pattern.Type, size int) *data.Forest {
	var roots []*data.Node
	var all []*data.Node
	for len(all) < size {
		if len(all) == 0 || rng.Intn(6) == 0 {
			r := data.NewNode(types[rng.Intn(len(types))])
			roots = append(roots, r)
			all = append(all, r)
		} else {
			all = append(all, all[rng.Intn(len(all))].Child(types[rng.Intn(len(types))]))
		}
	}
	return data.NewForest(roots...)
}
