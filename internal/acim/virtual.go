package acim

import (
	"time"

	"tpq/internal/chase"
	"tpq/internal/ics"
	"tpq/internal/pattern"
)

// This file implements the paper's production variant of ACIM (Section
// 6.1): "in order to avoid the additional overhead required by the ACIM
// algorithm (because of the constrained augmentation), augmentations are
// not physically added to the initial query. They are maintained only as
// redundant nodes in the images and the ancestor/descendant tables."
//
// MinimizeVirtual is observably equivalent to Minimize — the package tests
// check isomorphism of the two outputs on random inputs — but never
// materializes temporary witness nodes: the images machinery works over
// entities, which are either real pattern nodes or virtual witnesses
// (owner node, edge kind, witness type) implied by an integrity constraint
// at the owner. A benchmark quantifies the difference.

// witness is a virtual chase witness: a node the constraints guarantee
// to exist without it being materialized in the pattern. Witnesses form
// chains — a witness has its own guaranteed children, mirroring the
// recursive chase in chase.Augment — rooted at the real owner node whose
// types fired the first constraint.
type witness struct {
	owner    *pattern.Node // real node the chain hangs from
	parent   *witness      // nil when directly under owner
	kind     pattern.EdgeKind
	typ      pattern.Type
	children []*witness
}

// entity is either a real pattern node or a virtual witness.
type entity struct {
	real *pattern.Node // non-nil for real nodes
	w    *witness      // non-nil for virtual witnesses
}

func realEnt(n *pattern.Node) entity { return entity{real: n} }

// hasType reports whether the entity's guaranteed data image carries t,
// through co-occurrence in the closed constraint set.
func (e entity) hasType(t pattern.Type, cs *ics.Set) bool {
	if e.real != nil {
		if e.real.HasType(t) {
			return true
		}
		for _, own := range e.real.Types() {
			if cs.HasCo(own, t) {
				return true
			}
		}
		return false
	}
	return cs.HasCo(e.w.typ, t)
}

// star reports whether the entity carries the output marker (virtual
// witnesses never do).
func (e entity) star() bool { return e.real != nil && e.real.Star }

// isChildOf reports whether the entity is a c-child of the real node s.
func (e entity) isChildOf(s *pattern.Node) bool {
	if e.real != nil {
		return e.real.Parent == s && e.real.Edge == pattern.Child
	}
	return e.w.parent == nil && e.w.owner == s && e.w.kind == pattern.Child
}

// isDescendantOf reports whether the entity is a proper descendant of the
// real node s. Every witness of a chain hangs below its owner, so chain
// position is irrelevant here.
func (e entity) isDescendantOf(s *pattern.Node, idx *pattern.Index) bool {
	if e.real != nil {
		return idx.IsDescendant(e.real, s)
	}
	return e.w.owner == s || idx.IsDescendant(e.w.owner, s)
}

// MinimizeVirtual returns the unique minimal query equivalent to p under
// cs, using virtual augmentation. p is untouched; cs need not be closed.
func MinimizeVirtual(p *pattern.Pattern, cs *ics.Set) *pattern.Pattern {
	q, _ := MinimizeVirtualWithStats(p, cs)
	return q
}

// MinimizeVirtualWithStats is MinimizeVirtual with run statistics.
// Augmented counts the virtual witnesses considered (the analogue of
// physically added nodes).
func MinimizeVirtualWithStats(p *pattern.Pattern, cs *ics.Set) (*pattern.Pattern, Stats) {
	var st Stats
	start := time.Now()
	q := p.Clone()
	if cs == nil {
		cs = ics.NewSet()
	}
	tAug := time.Now()
	if !cs.IsClosed() {
		cs = cs.Closure()
	}
	witnesses, nWit := virtualWitnesses(q, cs)
	st.Augmented = nWit
	st.AugmentTime = time.Since(tAug)
	st.AugmentedSize = q.Size() + nWit

	nonRedundant := make(map[*pattern.Node]bool)
	for {
		l := nextVirtualCandidate(q, nonRedundant)
		if l == nil {
			break
		}
		st.Tests++
		if redundantLeafVirtual(q, l, witnesses, cs, &st) {
			l.Detach()
			st.Removed++
		} else {
			nonRedundant[l] = true
		}
	}
	st.TotalTime = time.Since(start)
	return q, st
}

// virtualWitnesses computes, per original node, the witness chains its
// types imply under the closed constraint set, restricted — exactly like
// physical augmentation — to witness types that can matter for a
// containment mapping. The targets and chain shapes come from the
// precompiled chase plan's instance for this query's type set (the same
// specialization physical augmentation uses), so the per-call
// recomputation of WantedWitnessTypes and WitnessTargets is gone; chains
// are compiled only on acyclic-required sets, preserving chase.Augment's
// termination guard, so MinimizeVirtual stays observably equivalent to
// Minimize.
func virtualWitnesses(q *pattern.Pattern, cs *ics.Set) (map[*pattern.Node][]entity, int) {
	in := chase.PlanFor(cs).Specialize(q.TypeSet())

	total := 0
	// grow adds w's guaranteed children from the compiled chain. The
	// closure folds constraints of w's co-occurrence types into its
	// primary type's targets, so — unlike for real nodes with explicit
	// extra types — the per-type chain suffices.
	var grow func(owner *pattern.Node, w *witness, kids []chase.ChainChild)
	grow = func(owner *pattern.Node, w *witness, kids []chase.ChainChild) {
		for _, c := range kids {
			cw := &witness{owner: owner, parent: w, kind: c.Edge, typ: c.Type}
			w.children = append(w.children, cw)
			total++
			grow(owner, cw, c.Children())
		}
	}

	out := make(map[*pattern.Node][]entity)
	q.Walk(func(n *pattern.Node) {
		childT, descT := in.Targets(n.Types())
		var roots []*witness
		for _, b := range childT {
			roots = append(roots, &witness{owner: n, kind: pattern.Child, typ: b})
		}
		for _, b := range descT {
			roots = append(roots, &witness{owner: n, kind: pattern.Descendant, typ: b})
		}
		if len(roots) == 0 {
			return
		}
		total += len(roots)
		var ws []entity
		for _, r := range roots {
			grow(n, r, in.ChainChildren(r.typ))
			for _, w := range flatten(r, nil) {
				ws = append(ws, entity{w: w})
			}
		}
		out[n] = ws
	})
	return out, total
}

func flatten(w *witness, acc []*witness) []*witness {
	acc = append(acc, w)
	for _, c := range w.children {
		acc = flatten(c, acc)
	}
	return acc
}

func nextVirtualCandidate(q *pattern.Pattern, nonRedundant map[*pattern.Node]bool) *pattern.Node {
	var found *pattern.Node
	q.Walk(func(n *pattern.Node) {
		if found != nil || n.Star || nonRedundant[n] || !n.IsLeaf() {
			return
		}
		found = n
	})
	return found
}

// labelCompatVirtual: required types of u (co-occurrence-augmented on the
// image side by entity.hasType) plus one-directional star preservation.
func labelCompatVirtual(u *pattern.Node, e entity, cs *ics.Set) bool {
	if u.Star && !e.star() {
		return false
	}
	for _, t := range u.Types() {
		if !e.hasType(t, cs) {
			return false
		}
	}
	// Value conditions: a real image must entail u's conditions; virtual
	// witnesses carry none, so they only serve condition-free nodes.
	if e.real != nil {
		return e.real.CondsEntail(u)
	}
	return pattern.Entails(nil, u.Conds)
}

// redundantLeafVirtual is Figure 3 over entities.
func redundantLeafVirtual(q *pattern.Pattern, l *pattern.Node, witnesses map[*pattern.Node][]entity, cs *ics.Set, st *Stats) bool {
	tStart := time.Now()
	idx := pattern.NewIndex(q)

	// Candidate entities: all real nodes plus all virtual witnesses. As in
	// the physical engine, other nodes may map onto l (mutually redundant
	// twins), but l itself must move — and may not hide in its own
	// witnesses, which vanish with it.
	var candidates []entity
	for _, n := range idx.Order {
		candidates = append(candidates, realEnt(n))
		candidates = append(candidates, witnesses[n]...)
	}

	images := make(map[*pattern.Node]map[int]bool, len(idx.Order))
	for _, v := range idx.Order {
		set := make(map[int]bool)
		for i, e := range candidates {
			if v == l && (e.real == l || (e.w != nil && e.w.owner == l)) {
				continue
			}
			if labelCompatVirtual(v, e, cs) {
				set[i] = true
			}
		}
		images[v] = set
	}
	st.TablesTime += time.Since(tStart)

	if len(images[l]) == 0 {
		return false
	}

	marked := map[*pattern.Node]bool{l: true}
	var minimize func(v *pattern.Node)
	minimize = func(v *pattern.Node) {
		if marked[v] {
			return
		}
		if v.IsLeaf() {
			marked[v] = true
			return
		}
		for _, u := range v.Children {
			minimize(u)
		}
		set := images[v]
		for i := range set {
			s := candidates[i]
			ok := true
			for _, u := range v.Children {
				if !childHasImageUnder(u, s, images[u], candidates, idx) {
					ok = false
					break
				}
			}
			if !ok {
				delete(set, i)
			}
		}
		marked[v] = true
	}

	selfIdx := make(map[*pattern.Node]int)
	for i, e := range candidates {
		if e.real != nil {
			selfIdx[e.real] = i
		}
	}
	for v := l.Parent; v != nil; v = v.Parent {
		minimize(v)
		if len(images[v]) == 0 {
			return false
		}
		if v != q.Root {
			if i, ok := selfIdx[v]; ok && images[v][i] {
				return true
			}
		}
	}
	return len(images[q.Root]) > 0
}

// childHasImageUnder reports whether child u of a query node has an image
// correctly placed relative to its parent's image s. When s is a virtual
// witness, u's image must be a witness of the same chain: real nodes
// never hang below witnesses.
func childHasImageUnder(u *pattern.Node, s entity, uImages map[int]bool, candidates []entity, idx *pattern.Index) bool {
	if s.real != nil {
		if u.Edge == pattern.Child {
			for i := range uImages {
				if candidates[i].isChildOf(s.real) {
					return true
				}
			}
			return false
		}
		for i := range uImages {
			if candidates[i].isDescendantOf(s.real, idx) {
				return true
			}
		}
		return false
	}
	if u.Edge == pattern.Child {
		for i := range uImages {
			if c := candidates[i]; c.w != nil && c.w.parent == s.w && c.w.kind == pattern.Child {
				return true
			}
		}
		return false
	}
	for i := range uImages {
		if c := candidates[i]; c.w != nil && witnessBelow(c.w, s.w) {
			return true
		}
	}
	return false
}

// witnessBelow reports whether c hangs strictly below anc in a chain.
func witnessBelow(c, anc *witness) bool {
	for p := c.parent; p != nil; p = p.parent {
		if p == anc {
			return true
		}
	}
	return false
}
