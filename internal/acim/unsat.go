package acim

import (
	"tpq/internal/ics"
	"tpq/internal/pattern"
)

// UnsatisfiableUnder reports whether the query can never produce an answer
// on any database satisfying cs — the use this library makes of forbidden
// child/descendant constraints (the paper's Section 7 notes that under
// such constraints the minimal equivalent query need not be unique, so
// they do not participate in minimization; an unsatisfiable query, though,
// is equivalent to the empty answer under any definition).
//
// The check is sound and complete for the constraint forms supported:
//
//   - a node whose (co-occurrence-closed) type set includes an empty type
//     (ics.Set.EmptyTypes) can match nothing;
//   - a c-edge (x, y) conflicts when some type of x forbids some type of y
//     as a child — or as a descendant, since a child is one;
//   - an ancestor/descendant pair (w, x) — at any distance, through any
//     edge kinds — conflicts when some type of w forbids, as a descendant,
//     some type of x or some type x is *required* to have below it (the
//     chase consequences of x's types).
func UnsatisfiableUnder(p *pattern.Pattern, cs *ics.Set) bool {
	if p == nil || p.Root == nil || cs == nil {
		return false
	}
	// Only forbidden forms can make a query unsatisfiable; closure never
	// introduces one from required/co-occurrence forms alone.
	if !cs.HasForbidden() {
		return false
	}
	if !cs.IsClosed() {
		cs = cs.Closure()
	}
	empty := cs.EmptyTypes()

	// Effective type set of each node: declared types plus co-occurrence
	// consequences.
	effective := func(n *pattern.Node) []pattern.Type {
		seen := map[pattern.Type]bool{}
		var out []pattern.Type
		for _, t := range n.Types() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
			for _, u := range cs.CoTargets(t) {
				if !seen[u] {
					seen[u] = true
					out = append(out, u)
				}
			}
		}
		return out
	}

	unsat := false
	idx := pattern.NewIndex(p)
	eff := make(map[*pattern.Node][]pattern.Type, len(idx.Order))
	for _, n := range idx.Order {
		eff[n] = effective(n)
		for _, t := range eff[n] {
			if empty[t] {
				unsat = true
			}
		}
	}
	if unsat {
		return true
	}

	// below[x]: the types guaranteed to occur strictly below a match of x —
	// x's own required descendants, per the closed set.
	for _, w := range idx.Order {
		for _, x := range idx.Order {
			if w == x || !idx.IsDescendant(x, w) {
				continue
			}
			for _, tw := range eff[w] {
				// Direct c-edge conflict.
				if x.Parent == w && x.Edge == pattern.Child {
					for _, tx := range eff[x] {
						if cs.HasForbidChild(tw, tx) {
							return true
						}
					}
				}
				for _, tx := range eff[x] {
					if cs.HasForbidDesc(tw, tx) {
						return true
					}
					// Chase consequences of x's types also live below w.
					for _, b := range cs.DescTargets(tx) {
						if cs.HasForbidDesc(tw, b) {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
