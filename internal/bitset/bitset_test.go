package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Any() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) true after Remove")
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestWordOps(t *testing.T) {
	a, b := New(200), New(200)
	for i := 0; i < 200; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Add(i)
	}
	and := New(200)
	and.CopyFrom(a)
	and.And(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 && i%3 == 0
		if and.Has(i) != want {
			t.Fatalf("And: bit %d = %v, want %v", i, and.Has(i), want)
		}
	}
	andnot := New(200)
	andnot.CopyFrom(a)
	andnot.AndNot(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 && i%3 != 0
		if andnot.Has(i) != want {
			t.Fatalf("AndNot: bit %d = %v, want %v", i, andnot.Has(i), want)
		}
	}
	or := New(200)
	or.CopyFrom(a)
	or.Or(b)
	if !or.Intersects(b) || !or.Intersects(a) {
		t.Fatal("Or result must intersect both inputs")
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	members := []int{3, 64, 65, 190, 299}
	for _, i := range members {
		s.Add(i)
	}
	got := []int{}
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(members) {
		t.Fatalf("NextSet walk = %v, want %v", got, members)
	}
	for k := range got {
		if got[k] != members[k] {
			t.Fatalf("NextSet walk = %v, want %v", got, members)
		}
	}
	if s.NextSet(300) != -1 {
		t.Fatal("NextSet past capacity should be -1")
	}
}

// TestIntersectsRange cross-validates the masked word scan against a
// naive bit loop on random sets and ranges.
func TestIntersectsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				s.Add(i)
			}
		}
		for rep := 0; rep < 20; rep++ {
			lo := rng.Intn(n+10) - 5
			hi := lo + rng.Intn(80) - 5
			naive := false
			for i := lo; i <= hi; i++ {
				if i >= 0 && i < n && s.Has(i) {
					naive = true
					break
				}
			}
			if got := s.IntersectsRange(lo, hi); got != naive {
				t.Fatalf("IntersectsRange(%d,%d) = %v, want %v (n=%d)", lo, hi, got, naive, n)
			}
			wantNext := -1
			for i := lo; i <= hi; i++ {
				if i >= 0 && i < n && s.Has(i) {
					wantNext = i
					break
				}
			}
			if lo >= 0 {
				if got := s.NextInRange(lo, hi); got != wantNext {
					t.Fatalf("NextInRange(%d,%d) = %d, want %d", lo, hi, got, wantNext)
				}
			}
		}
	}
}

// TestAddRange cross-validates the word-parallel range fill against a
// naive bit loop on random ranges.
func TestAddRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		s := New(n)
		want := make([]bool, n)
		for rep := 0; rep < 5; rep++ {
			lo := rng.Intn(n+10) - 5
			hi := lo + rng.Intn(150) - 5
			s.AddRange(lo, hi)
			for i := lo; i <= hi; i++ {
				if i >= 0 && i < n {
					want[i] = true
				}
			}
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != want[i] {
				t.Fatalf("trial %d: bit %d = %v, want %v", trial, i, s.Has(i), want[i])
			}
		}
	}
}

func TestArenaReuse(t *testing.T) {
	var a Arena
	s := a.Get(100)
	s.Add(7)
	a.Put(s)
	r := a.Get(90)
	if r.Has(7) {
		t.Fatal("recycled set not zeroed")
	}
	big := a.Get(10000)
	if len(big) != WordsFor(10000) {
		t.Fatalf("Get(10000) len = %d words, want %d", len(big), WordsFor(10000))
	}
}

func TestMatrix(t *testing.T) {
	var a Arena
	m := NewMatrix(&a, 5, 130)
	m.Row(2).Add(129)
	m.Row(3).Add(0)
	if m.Row(2).Has(0) || !m.Row(2).Has(129) || !m.Row(3).Has(0) {
		t.Fatal("matrix rows interfere")
	}
	if m.Rows() != 5 {
		t.Fatalf("Rows = %d, want 5", m.Rows())
	}
	m.Release(&a)
	m2 := NewMatrix(&a, 5, 130)
	for i := 0; i < 5; i++ {
		if m2.Row(i).Any() {
			t.Fatal("recycled matrix not zeroed")
		}
	}
}

func TestRemoveRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		s := New(n)
		want := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
				want[i] = true
			}
		}
		lo := rng.Intn(n+20) - 10
		hi := lo + rng.Intn(n+20) - 5
		s.RemoveRange(lo, hi)
		for i := 0; i < n; i++ {
			if i >= lo && i <= hi {
				want[i] = false
			}
			if s.Has(i) != want[i] {
				t.Fatalf("trial %d: RemoveRange(%d,%d): bit %d = %v, want %v",
					trial, lo, hi, i, s.Has(i), want[i])
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := New(130), New(130)
	if !a.Equal(b) {
		t.Fatal("empty sets not equal")
	}
	a.Add(129)
	if a.Equal(b) {
		t.Fatal("sets differing at bit 129 reported equal")
	}
	b.Add(129)
	if !a.Equal(b) {
		t.Fatal("identical sets not equal")
	}
}

// TestAndIntersectsRange cross-validates the fused and-plus-range probe
// against a naive bit loop over two random sets.
func TestAndIntersectsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		s, u := New(n), New(n+rng.Intn(64))
		for i := 0; i < n; i++ {
			if rng.Intn(6) == 0 {
				s.Add(i)
			}
			if rng.Intn(6) == 0 {
				u.Add(i)
			}
		}
		for rep := 0; rep < 20; rep++ {
			lo := rng.Intn(n+10) - 5
			hi := lo + rng.Intn(90) - 5
			naive := false
			for i := lo; i <= hi; i++ {
				if i >= 0 && i < n && s.Has(i) && u.Has(i) {
					naive = true
					break
				}
			}
			if got := s.AndIntersectsRange(u, lo, hi); got != naive {
				t.Fatalf("AndIntersectsRange(%d,%d) = %v, want %v (n=%d)", lo, hi, got, naive, n)
			}
			if got := u.AndIntersectsRange(s, lo, hi); got != naive {
				t.Fatalf("flipped AndIntersectsRange(%d,%d) = %v, want %v", lo, hi, got, naive)
			}
		}
	}
}
