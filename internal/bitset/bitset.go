// Package bitset provides the dense set substrate of the integer-indexed
// execution layer: fixed-capacity sets of small integers packed into
// uint64 words, plus a sync.Pool-backed arena that recycles rows across
// the thousands of redundancy tests a minimization run performs.
//
// The minimization and matching dynamic programs all reduce to the same
// two primitives over node-ID sets — "intersect a row with a candidate
// set" and "does this row contain any ID in a preorder interval" — so a
// Set is deliberately minimal: a []uint64 with word-parallel And/AndNot/Or,
// a range-intersection test (ancestor/descendant checks against preorder
// intervals become one masked word scan), and NextSet iteration.
//
// Sets are plain slices, not structs: the capacity is fixed at creation
// and callers index only within it. All binary operations require equal
// lengths, which the execution layer guarantees by allocating every row of
// one DP table from the same arena.
package bitset

import (
	"math/bits"
	"sync"
)

// Word is the machine word a Set is packed into.
type Word = uint64

const wordBits = 64

// WordsFor returns the number of words needed for n bits.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Set is a fixed-capacity set of integers in [0, 64*len(s)).
type Set []Word

// New returns a zeroed set with capacity for n bits.
func New(n int) Set { return make(Set, WordsFor(n)) }

// Has reports whether i is in the set.
func (s Set) Has(i int) bool { return s[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 }

// Add inserts i.
func (s Set) Add(i int) { s[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Remove deletes i.
func (s Set) Remove(i int) { s[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Reset clears every bit, keeping the capacity.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// And intersects s with t in place. The sets must have equal length.
func (s Set) And(t Set) {
	for i := range s {
		s[i] &= t[i]
	}
}

// AndNot removes every member of t from s in place. Equal lengths required.
func (s Set) AndNot(t Set) {
	for i := range s {
		s[i] &^= t[i]
	}
}

// Or unions t into s in place. Equal lengths required.
func (s Set) Or(t Set) {
	for i := range s {
		s[i] |= t[i]
	}
}

// CopyFrom overwrites s with t. Equal lengths required.
func (s Set) CopyFrom(t Set) { copy(s, t) }

// Any reports whether the set is non-empty.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Intersects reports whether s and t share a member. Equal lengths
// required.
func (s Set) Intersects(t Set) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the smallest member >= i, or -1 if there is none.
func (s Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	if w >= len(s) {
		return -1
	}
	cur := s[w] >> (uint(i) % wordBits)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s); w++ {
		if s[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s[w])
		}
	}
	return -1
}

// IntersectsRange reports whether the set contains any member in the
// inclusive range [lo, hi]. This is the ancestor/descendant primitive: the
// proper descendants of a node occupy a contiguous preorder-ID interval,
// so "does this child have a feasible image below s" is one call.
func (s Set) IntersectsRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if lo > hi || lo >= len(s)*wordBits {
		return false
	}
	if max := len(s)*wordBits - 1; hi > max {
		hi = max
	}
	loW, hiW := lo/wordBits, hi/wordBits
	loMask := ^Word(0) << (uint(lo) % wordBits)
	hiMask := ^Word(0) >> (wordBits - 1 - uint(hi)%wordBits)
	if loW == hiW {
		return s[loW]&loMask&hiMask != 0
	}
	if s[loW]&loMask != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if s[w] != 0 {
			return true
		}
	}
	return s[hiW]&hiMask != 0
}

// AndIntersectsRange reports whether s ∧ t contains any member in the
// inclusive range [lo, hi], without materializing the intersection. The
// streaming matcher's leaf test is exactly this shape — "does any node in
// v's subtree interval carry every required type" — and a d-edge leaf with
// one extra type would otherwise need a scratch row per probe.
func (s Set) AndIntersectsRange(t Set, lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	if lo > hi || lo >= n*wordBits {
		return false
	}
	if max := n*wordBits - 1; hi > max {
		hi = max
	}
	loW, hiW := lo/wordBits, hi/wordBits
	loMask := ^Word(0) << (uint(lo) % wordBits)
	hiMask := ^Word(0) >> (wordBits - 1 - uint(hi)%wordBits)
	if loW == hiW {
		return s[loW]&t[loW]&loMask&hiMask != 0
	}
	if s[loW]&t[loW]&loMask != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if s[w]&t[w] != 0 {
			return true
		}
	}
	return s[hiW]&t[hiW]&hiMask != 0
}

// AddRange inserts every integer in the inclusive range [lo, hi],
// word-parallel. Used to mark whole preorder subtree intervals at once.
func (s Set) AddRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if max := len(s)*wordBits - 1; hi > max {
		hi = max
	}
	if lo > hi {
		return
	}
	loW, hiW := lo/wordBits, hi/wordBits
	loMask := ^Word(0) << (uint(lo) % wordBits)
	hiMask := ^Word(0) >> (wordBits - 1 - uint(hi)%wordBits)
	if loW == hiW {
		s[loW] |= loMask & hiMask
		return
	}
	s[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		s[w] = ^Word(0)
	}
	s[hiW] |= hiMask
}

// RemoveRange deletes every integer in the inclusive range [lo, hi],
// word-parallel. The incremental images-table engine uses it to mask a
// tested leaf's excluded subtree interval and to clear the columns of a
// removed subtree from every surviving row.
func (s Set) RemoveRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if max := len(s)*wordBits - 1; hi > max {
		hi = max
	}
	if lo > hi {
		return
	}
	loW, hiW := lo/wordBits, hi/wordBits
	loMask := ^Word(0) << (uint(lo) % wordBits)
	hiMask := ^Word(0) >> (wordBits - 1 - uint(hi)%wordBits)
	if loW == hiW {
		s[loW] &^= loMask & hiMask
		return
	}
	s[loW] &^= loMask
	for w := loW + 1; w < hiW; w++ {
		s[w] = 0
	}
	s[hiW] &^= hiMask
}

// Equal reports whether s and t contain exactly the same members. Equal
// lengths required.
func (s Set) Equal(t Set) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// NextInRange returns the smallest member in [lo, hi], or -1.
func (s Set) NextInRange(lo, hi int) int {
	i := s.NextSet(lo)
	if i < 0 || i > hi {
		return -1
	}
	return i
}

// Arena recycles word slices across DP-table builds. A minimization run
// performs one redundancy test per candidate leaf, each needing O(n) rows
// of O(n/64) words; routing the rows through an arena makes the steady
// state allocation-free. Arenas are safe for concurrent use (the batch
// minimizer gives each worker its own to avoid pool contention, but
// sharing one is correct).
//
// The zero Arena is ready to use.
type Arena struct {
	pool sync.Pool
}

// Get returns a zeroed Set with capacity for n bits, reusing a recycled
// slice when one is large enough.
func (a *Arena) Get(n int) Set {
	words := WordsFor(n)
	if v := a.pool.Get(); v != nil {
		s := v.(Set)
		if cap(s) >= words {
			s = s[:words]
			s.Reset()
			return s
		}
	}
	return make(Set, words)
}

// Put returns a set to the arena for reuse. The caller must not use s
// afterwards.
func (a *Arena) Put(s Set) {
	if s != nil {
		a.pool.Put(s) //nolint:staticcheck // Set is a slice; boxing is fine here
	}
}

// Matrix is a dense table of equal-length rows allocated in one slab —
// the images tables and DP tables of the execution layer. Row i is the
// bit-set over columns for node ID i.
type Matrix struct {
	rows  int
	words int
	bits  Set // rows * words
}

// NewMatrix allocates a rows x cols bit matrix from the arena (a may be
// nil for a plain allocation).
func NewMatrix(a *Arena, rows, cols int) *Matrix {
	words := WordsFor(cols)
	var slab Set
	if a != nil {
		slab = a.Get(rows * words * wordBits)
	} else {
		slab = make(Set, rows*words)
	}
	return &Matrix{rows: rows, words: words, bits: slab}
}

// Release returns the matrix's slab to the arena. The matrix must not be
// used afterwards.
func (m *Matrix) Release(a *Arena) {
	if a != nil && m.bits != nil {
		a.Put(m.bits)
	}
	m.bits = nil
}

// Row returns row i as a Set sharing the matrix's storage.
func (m *Matrix) Row(i int) Set { return m.bits[i*m.words : (i+1)*m.words] }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }
