package schema

import (
	"strings"
	"testing"

	"tpq/internal/data"
	"tpq/internal/ics"
	"tpq/internal/pattern"
)

// bookSchema models Figure 1(a): a Book has a required Title, 1-5 Authors
// and a Chapter; Authors have a required LastName.
func bookSchema() *Schema {
	s := New()
	s.Declare("Book",
		Required("Title"),
		ChildDecl{Name: "Author", MinOccurs: 1, MaxOccurs: 5},
		Optional("Chapter"),
	)
	s.Declare("Author", Required("LastName"))
	s.Declare("Title")
	s.Declare("LastName")
	s.Declare("Chapter")
	return s
}

func TestInferRequiredChildren(t *testing.T) {
	cs := bookSchema().InferConstraints()
	for _, want := range []ics.Constraint{
		ics.Child("Book", "Title"),
		ics.Child("Book", "Author"),
		ics.Child("Author", "LastName"),
	} {
		if !cs.Has(want) {
			t.Errorf("inferred set misses %s", want)
		}
	}
	// Optional children imply nothing.
	if cs.HasChild("Book", "Chapter") || cs.HasDesc("Book", "Chapter") {
		t.Error("optional Chapter treated as required")
	}
}

func TestInferTransitiveDescendants(t *testing.T) {
	// Section 2.2: every Book must have a LastName descendant, because
	// every Book has an Author child and every Author a LastName child.
	cs := bookSchema().InferConstraints()
	if !cs.HasDesc("Book", "LastName") {
		t.Error("Book => LastName not inferred")
	}
	if !cs.HasDesc("Book", "Title") {
		t.Error("Book => Title not inferred (child implies descendant)")
	}
}

func TestInferIsA(t *testing.T) {
	// The directory example: every employee entry also belongs to person.
	s := New()
	s.DeclareIsA("Employee", "Person")
	s.DeclareIsA("Manager", "Employee")
	s.Declare("Person", Required("CommonName"))
	s.Declare("CommonName")
	cs := s.InferConstraints()
	if !cs.HasCo("Employee", "Person") || !cs.HasCo("Manager", "Person") {
		t.Error("is-a constraints not inferred (or not closed)")
	}
	// Through the closure, managers inherit person's required children.
	if !cs.HasChild("Manager", "CommonName") {
		t.Error("inherited required child not inferred")
	}
}

func TestValidate(t *testing.T) {
	s := New()
	s.Declare("a", ChildDecl{Name: "b", MinOccurs: 2, MaxOccurs: 1})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "maxOccurs") {
		t.Errorf("Validate = %v", err)
	}
	s2 := New()
	s2.Declare("a", ChildDecl{Name: "b", MinOccurs: -1})
	if err := s2.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("Validate = %v", err)
	}
	if err := bookSchema().Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestConformsTypes(t *testing.T) {
	s := bookSchema()
	if err := s.ConformsTypes("Book", nil); err == nil {
		t.Error("missing required children accepted")
	}
	if err := s.ConformsTypes("Book", []pattern.Type{"Title", "Author"}); err != nil {
		t.Errorf("conforming children rejected: %v", err)
	}
	if err := s.ConformsTypes("Undeclared", nil); err != nil {
		t.Errorf("undeclared parent rejected: %v", err)
	}
}

func TestConformsForest(t *testing.T) {
	s := bookSchema()
	lib := data.NewNode("Library")
	b := lib.Child("Book")
	b.Child("Title")
	b.Child("Author").Child("LastName")
	f := data.NewForest(lib)
	if err := s.ConformsForest(f); err != nil {
		t.Errorf("conforming forest rejected: %v", err)
	}
	// A Book containing a stray element violates the declaration.
	b.Child("Pamphlet")
	f.Reindex()
	if err := s.ConformsForest(f); err == nil || !strings.Contains(err.Error(), "Pamphlet") {
		t.Errorf("ConformsForest = %v", err)
	}
	// Too many authors.
	b2 := lib.Child("Book")
	b2.Child("Title")
	for i := 0; i < 6; i++ {
		b2.Child("Author").Child("LastName")
	}
	f2 := data.NewForest(b2)
	if err := s.ConformsForest(f2); err == nil || !strings.Contains(err.Error(), "at most") {
		t.Errorf("maxOccurs violation = %v", err)
	}
}

func TestTypesAndDecl(t *testing.T) {
	s := bookSchema()
	types := s.Types()
	if len(types) != 5 || types[0] != "Author" {
		t.Errorf("Types = %v", types)
	}
	if s.Decl("Book") == nil || s.Decl("Nope") != nil {
		t.Error("Decl lookup wrong")
	}
}

func TestSchemaDrivenMinimizationEndToEnd(t *testing.T) {
	// The introduction's example, driven from a schema instead of
	// hand-written constraints: a query for books with a publisher
	// simplifies when the schema says every book has one.
	s := New()
	s.Declare("Book", Required("Title"), Required("Publisher"), Optional("Author"))
	s.Declare("Title")
	s.Declare("Publisher")
	s.Declare("Author")
	cs := s.InferConstraints()
	if !cs.HasChild("Book", "Publisher") {
		t.Fatal("schema inference incomplete")
	}
}

// Silence unused import when test cases above change.
var _ = ics.NewSet
