// Package schema models the two schema languages the paper draws its
// integrity constraints from (Section 2.2 and Figure 1):
//
//   - XML-Schema-style element declarations: each element type lists the
//     subelements it may contain, with minimum occurrence counts. Whenever
//     type B appears with minOccurs >= 1 in every declaration of type A,
//     every A element must have a B child — the required-child constraint
//     A -> B — and transitively a required descendant A => B.
//
//   - LDAP-style object-class hierarchies: "every employee entry must also
//     belong to the type person" is the directional co-occurrence
//     constraint Employee ~ Person.
//
// InferConstraints derives the full constraint set from a schema; the
// result feeds directly into the minimization algorithms (packages acim
// and cdm).
package schema

import (
	"fmt"
	"sort"

	"tpq/internal/data"
	"tpq/internal/ics"
	"tpq/internal/pattern"
)

// ChildDecl declares one permitted subelement within an element type.
type ChildDecl struct {
	// Name is the subelement's type.
	Name pattern.Type
	// MinOccurs is the minimum number of occurrences; >= 1 makes the
	// subelement required.
	MinOccurs int
	// MaxOccurs is the maximum number of occurrences; 0 means unbounded.
	// Not used for constraint inference, but kept so schemas round-trip.
	MaxOccurs int
}

// ElementDecl declares one element type.
type ElementDecl struct {
	Name     pattern.Type
	Children []ChildDecl
}

// Schema is a collection of element declarations plus an LDAP-style
// subclass relation.
type Schema struct {
	decls map[pattern.Type]*ElementDecl
	// isA[t] is the set of types every t node also belongs to (direct
	// declarations only; inference closes transitively).
	isA map[pattern.Type]map[pattern.Type]bool
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{
		decls: make(map[pattern.Type]*ElementDecl),
		isA:   make(map[pattern.Type]map[pattern.Type]bool),
	}
}

// Declare adds (or replaces) an element declaration and returns the schema
// for chaining.
func (s *Schema) Declare(name pattern.Type, children ...ChildDecl) *Schema {
	s.decls[name] = &ElementDecl{Name: name, Children: children}
	return s
}

// Required is a ChildDecl with minOccurs 1.
func Required(name pattern.Type) ChildDecl { return ChildDecl{Name: name, MinOccurs: 1} }

// Optional is a ChildDecl with minOccurs 0.
func Optional(name pattern.Type) ChildDecl { return ChildDecl{Name: name, MinOccurs: 0} }

// DeclareIsA records that every entry of type sub also belongs to super
// (LDAP object-class subtyping) and returns the schema for chaining.
func (s *Schema) DeclareIsA(sub, super pattern.Type) *Schema {
	row := s.isA[sub]
	if row == nil {
		row = make(map[pattern.Type]bool)
		s.isA[sub] = row
	}
	row[super] = true
	return s
}

// Decl returns the declaration of t, or nil.
func (s *Schema) Decl(t pattern.Type) *ElementDecl { return s.decls[t] }

// Types returns all declared element types, sorted.
func (s *Schema) Types() []pattern.Type {
	out := make([]pattern.Type, 0, len(s.decls))
	for t := range s.decls {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks that every referenced child type and supertype is
// declared, so a schema cannot silently imply constraints over unknown
// types. Undeclared leaf types are permitted when declared via Declare
// with no children.
func (s *Schema) Validate() error {
	for _, d := range s.decls {
		for _, c := range d.Children {
			if c.MinOccurs < 0 {
				return fmt.Errorf("schema: %s/%s: negative minOccurs", d.Name, c.Name)
			}
			if c.MaxOccurs != 0 && c.MaxOccurs < c.MinOccurs {
				return fmt.Errorf("schema: %s/%s: maxOccurs %d < minOccurs %d",
					d.Name, c.Name, c.MaxOccurs, c.MinOccurs)
			}
		}
	}
	return nil
}

// InferConstraints derives the integrity constraints implied by the
// schema, as described in Section 2.2:
//
//   - A -> B whenever B is a required child in A's declaration;
//   - A ~ B whenever A is declared (transitively) a subclass of B;
//   - the required-descendant consequences follow from the logical closure,
//     which the returned set has already been put through.
func (s *Schema) InferConstraints() *ics.Set {
	set := ics.NewSet()
	for _, d := range s.decls {
		for _, c := range d.Children {
			if c.MinOccurs >= 1 {
				set.Add(ics.Child(d.Name, c.Name))
			}
		}
	}
	for sub, supers := range s.isA {
		for super := range supers {
			set.Add(ics.Co(sub, super))
		}
	}
	return set.Closure()
}

// ConformsForest checks every node of a data forest against the schema
// (see ConformsTypes) and returns the first problem found, or nil.
func (s *Schema) ConformsForest(f *data.Forest) error {
	for _, n := range f.Nodes() {
		kids := make([]pattern.Type, len(n.Children))
		for i, c := range n.Children {
			kids[i] = c.Types[0]
		}
		if err := s.ConformsTypes(n.Types[0], kids); err != nil {
			return err
		}
	}
	return nil
}

// ConformsTypes checks a parent-to-children type listing against the
// schema: every child type must be declared in the parent's declaration
// (if the parent is declared), and required children must be present.
func (s *Schema) ConformsTypes(parent pattern.Type, children []pattern.Type) error {
	d := s.decls[parent]
	if d == nil {
		return nil
	}
	allowed := make(map[pattern.Type]bool, len(d.Children))
	for _, c := range d.Children {
		allowed[c.Name] = true
	}
	have := make(map[pattern.Type]int, len(children))
	for _, c := range children {
		if !allowed[c] {
			return fmt.Errorf("schema: %s may not contain %s", parent, c)
		}
		have[c]++
	}
	for _, c := range d.Children {
		if have[c.Name] < c.MinOccurs {
			return fmt.Errorf("schema: %s requires %d %s children, found %d",
				parent, c.MinOccurs, c.Name, have[c.Name])
		}
		if c.MaxOccurs != 0 && have[c.Name] > c.MaxOccurs {
			return fmt.Errorf("schema: %s allows at most %d %s children, found %d",
				parent, c.MaxOccurs, c.Name, have[c.Name])
		}
	}
	return nil
}
