package shard

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"time"
)

// EntryPath is the internal peer-fetch endpoint every tpqd node
// serves. The owner answers only from its local tiers (single-hop: it
// never forwards the request again).
const EntryPath = "/internal/entry"

// DefaultTimeout bounds a single peer fetch. Peer fetches sit on the
// public-miss path, so a slow peer must degrade to a local compute,
// not a stall.
const DefaultTimeout = 2 * time.Second

// maxEntryBytes caps a peer response body; a serialized cache entry is
// a few KB, so anything near this limit is a misbehaving peer.
const maxEntryBytes = 8 << 20

// Client fetches cache entries from peer replicas.
type Client struct {
	hc *http.Client
}

// NewClient returns a peer-fetch client with the given per-request
// timeout (DefaultTimeout if <= 0).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{hc: &http.Client{Timeout: timeout}}
}

// FetchEntry asks peer for the entry stored under key. It returns
// (body, true, nil) on a hit, (nil, false, nil) on a definitive miss
// (HTTP 404), and an error for anything else — timeouts, refused
// connections, unexpected statuses — so the caller can count peer
// failures separately from misses.
func (c *Client) FetchEntry(ctx context.Context, peer string, key []byte) ([]byte, bool, error) {
	url := fmt.Sprintf("http://%s%s?key=%s", peer, EntryPath, hex.EncodeToString(key))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
		if err != nil {
			return nil, false, err
		}
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("shard: peer %s returned %s", peer, resp.Status)
	}
}
