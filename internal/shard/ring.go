// Package shard distributes minimization-cache ownership across a
// static fleet of tpqd replicas.
//
// Ownership is decided by consistent hashing over the replica list:
// each replica is projected onto a 64-bit ring at a fixed number of
// virtual points, and a key belongs to the first replica clockwise of
// the key's hash. Every node is configured with the same replica list
// (order-insensitive — the ring sorts and dedupes), so all nodes agree
// on ownership without any coordination traffic.
//
// The fetch protocol is deliberately single-hop: a node that misses
// locally asks the key's owner over HTTP (`GET /internal/entry?key=`),
// and the owner answers only from its own tiers — it never forwards
// again. A miss at the owner is a definitive fleet-wide miss.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per replica. 64
// points keeps the ownership imbalance across a handful of replicas
// within a few percent while the ring stays small enough to rebuild
// instantly.
const DefaultVirtualNodes = 64

// Ring maps keys to replica addresses by consistent hashing.
// It is immutable after construction and safe for concurrent use.
type Ring struct {
	hashes   []uint64 // sorted ring points
	owners   []string // owners[i] owns hashes[i]
	replicas []string // sorted, deduped replica list
}

// NewRing builds a ring over the given replica addresses with
// virtualNodes points per replica (DefaultVirtualNodes if <= 0).
// Addresses are sorted and deduped so every node in a fleet builds an
// identical ring regardless of flag order.
func NewRing(replicas []string, virtualNodes int) (*Ring, error) {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, r := range replicas {
		if r == "" {
			return nil, fmt.Errorf("shard: empty replica address")
		}
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("shard: no replicas")
	}
	sort.Strings(uniq)

	ring := &Ring{replicas: uniq}
	for _, rep := range uniq {
		for v := 0; v < virtualNodes; v++ {
			ring.hashes = append(ring.hashes, hash64(fmt.Sprintf("%s#%d", rep, v)))
			ring.owners = append(ring.owners, rep)
		}
	}
	sort.Sort(byHash{ring})
	return ring, nil
}

// Owner returns the replica that owns key.
func (r *Ring) Owner(key []byte) string {
	h := hash64b(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around the ring
	}
	return r.owners[i]
}

// Replicas returns the sorted, deduped replica list the ring was built
// over.
func (r *Ring) Replicas() []string {
	out := make([]string, len(r.replicas))
	copy(out, r.replicas)
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return Mix64(h.Sum64())
}

func hash64b(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return Mix64(h.Sum64())
}

// Mix64 is the splitmix64 finalizer. Raw FNV of short, similar strings
// ("n1:8080#0", "n1:8080#1", ...) leaves the ring points correlated
// and the arcs badly unbalanced; a full-avalanche mix fixes that. The
// service's sharded LRU reuses it to spread cache keys over shards.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// byHash sorts the parallel hashes/owners slices by hash, breaking the
// (astronomically unlikely) tie by owner so the ring is deterministic.
type byHash struct{ r *Ring }

func (s byHash) Len() int { return len(s.r.hashes) }
func (s byHash) Less(i, j int) bool {
	if s.r.hashes[i] != s.r.hashes[j] {
		return s.r.hashes[i] < s.r.hashes[j]
	}
	return s.r.owners[i] < s.r.owners[j]
}
func (s byHash) Swap(i, j int) {
	s.r.hashes[i], s.r.hashes[j] = s.r.hashes[j], s.r.hashes[i]
	s.r.owners[i], s.r.owners[j] = s.r.owners[j], s.r.owners[i]
}
