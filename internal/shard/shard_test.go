package shard

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"n1:8080", "n2:8080", "n3:8080"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:8080", "n1:8080", "n2:8080", "n1:8080"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Replicas()) != fmt.Sprint(b.Replicas()) {
		t.Fatalf("replica lists differ: %v vs %v", a.Replicas(), b.Replicas())
	}
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on key %d: %s vs %s", i, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	for rep, c := range counts {
		// With 64 vnodes per replica, each of 3 replicas should own
		// roughly a third of the keyspace; allow a wide band.
		if c < n/6 || c > n/2 {
			t.Fatalf("replica %s owns %d/%d keys — ring badly unbalanced: %v", rep, c, n, counts)
		}
	}
}

func TestRingSingleReplicaOwnsAll(t *testing.T) {
	r, err := NewRing([]string{"solo:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner([]byte(fmt.Sprintf("k%d", i))); got != "solo:1" {
			t.Fatalf("Owner = %q, want solo:1", got)
		}
	}
}

func TestRingRejectsBadReplicaLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty replica list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("blank replica address accepted")
	}
}

func TestFetchEntry(t *testing.T) {
	wantKey := []byte{0xde, 0xad, 0xbe, 0xef}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != EntryPath {
			http.NotFound(w, r)
			return
		}
		switch r.URL.Query().Get("key") {
		case hex.EncodeToString(wantKey):
			w.Write([]byte(`{"entry":"payload"}`))
		case "00":
			http.NotFound(w, r)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")
	c := NewClient(time.Second)

	body, ok, err := c.FetchEntry(context.Background(), peer, wantKey)
	if err != nil || !ok || string(body) != `{"entry":"payload"}` {
		t.Fatalf("hit: body=%q ok=%v err=%v", body, ok, err)
	}

	body, ok, err = c.FetchEntry(context.Background(), peer, []byte{0x00})
	if err != nil || ok || body != nil {
		t.Fatalf("miss: body=%q ok=%v err=%v", body, ok, err)
	}

	if _, _, err = c.FetchEntry(context.Background(), peer, []byte{0x01}); err == nil {
		t.Fatal("500 response did not surface as an error")
	}

	if _, _, err = c.FetchEntry(context.Background(), "127.0.0.1:1", wantKey); err == nil {
		t.Fatal("refused connection did not surface as an error")
	}
}
