package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(b byte, i int) []byte {
	k := bytes.Repeat([]byte{b}, KeySize/2)
	return append(k, []byte(fmt.Sprintf("%016d", i))...)
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(key('a', i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites replace, never duplicate.
	if err := s.Put(key('a', 3), []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	if v, ok := s.Get(key('a', 3)); !ok || string(v) != "replaced" {
		t.Fatalf("Get after overwrite = %q, %v", v, ok)
	}
	if _, ok := s.Get(key('b', 0)); ok {
		t.Fatal("Get of a missing key succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen replays the log: every record, overwrite included.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Entries != 20 || st.ReplayedRecords != 21 || st.TornBytes != 0 {
		t.Fatalf("reopen stats: %+v", st)
	}
	if v, ok := s2.Get(key('a', 3)); !ok || string(v) != "replaced" {
		t.Fatalf("reopened Get = %q, %v", v, ok)
	}
}

func TestScanOrderAndPrefix(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	// Insert out of order under two prefixes.
	for _, i := range []int{5, 1, 9, 3} {
		if err := s.Put(key('a', i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(key('b', 2), []byte("other")); err != nil {
		t.Fatal(err)
	}

	var got []int
	var seqs []uint64
	s.Scan(bytes.Repeat([]byte{'a'}, KeySize/2), func(k, v []byte, seq uint64) bool {
		got = append(got, int(v[0]))
		seqs = append(seqs, seq)
		return true
	})
	if want := []int{1, 3, 5, 9}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("prefix scan order = %v, want %v", got, want)
	}
	// Sequence ranks recency: 5 was written before 1, so key 1's seq > key 5's.
	bySeq := map[int]uint64{}
	for i, v := range got {
		bySeq[v] = seqs[i]
	}
	if !(bySeq[5] < bySeq[1] && bySeq[1] < bySeq[9] && bySeq[9] < bySeq[3]) {
		t.Fatalf("write sequences do not rank recency: %v", bySeq)
	}

	n := 0
	s.Scan(nil, func(k, v []byte, seq uint64) bool { n++; return true })
	if n != 5 {
		t.Fatalf("full scan visited %d entries, want 5", n)
	}
	n = 0
	s.Scan(nil, func(k, v []byte, seq uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-exit scan visited %d entries, want 1", n)
	}
}

func TestCompactAndReopenFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(key('a', i), []byte(strings.Repeat("x", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LogRecords != 0 || st.LogBytes != 0 || st.Compactions != 1 {
		t.Fatalf("post-compact stats: %+v", st)
	}
	// Appends after compaction land in the fresh log.
	if err := s.Put(key('a', 10), []byte("post")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	st = s2.Stats()
	if st.Entries != 11 || st.SnapshotRecords != 10 || st.ReplayedRecords != 1 {
		t.Fatalf("reopen-from-snapshot stats: %+v", st)
	}
	if v, ok := s2.Get(key('a', 10)); !ok || string(v) != "post" {
		t.Fatalf("post-compact record lost: %q, %v", v, ok)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CompactThreshold: 5})
	defer s.Close()
	for i := 0; i < 12; i++ {
		if err := s.Put(key('a', i), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions != 2 {
		t.Fatalf("Compactions = %d, want 2 (threshold 5, 12 puts)", st.Compactions)
	}
	if st.Entries != 12 {
		t.Fatalf("Entries = %d, want 12", st.Entries)
	}
}

func TestEncodeKey(t *testing.T) {
	cfp := strings.Repeat("0a", 16)
	pfp := strings.Repeat("ff", 16)
	k, err := EncodeKey(cfp, pfp)
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != KeySize {
		t.Fatalf("key length = %d, want %d", len(k), KeySize)
	}
	if !bytes.HasPrefix(k, bytes.Repeat([]byte{0x0a}, 16)) {
		t.Fatalf("constraint prefix not leading: %x", k)
	}
	for _, bad := range [][2]string{
		{"zz", pfp},                     // not hex
		{cfp, "abcd"},                   // wrong length
		{strings.Repeat("00", 15), pfp}, // short constraint half
	} {
		if _, err := EncodeKey(bad[0], bad[1]); err == nil {
			t.Errorf("EncodeKey(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

func TestClosedStoreRejects(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestBadPutArguments(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(bytes.Repeat([]byte{1}, maxKeyLen+1), nil); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestConcurrentPutsAndScans(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(key(byte('a'+w), i), []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					s.Scan(nil, func(k, v []byte, seq uint64) bool { return true })
					s.Get(key(byte('a'+w), i))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 200 {
		t.Fatalf("Len = %d, want 200", got)
	}
}

func TestOpenOnNonDirectoryFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open on a plain file succeeded")
	}
}
