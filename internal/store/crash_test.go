package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// seedStore writes n records and returns the dir plus each record's key
// and value, in write order, with the store closed afterwards so the log
// on disk is complete.
func seedStore(t *testing.T, n int) (string, [][]byte, [][]byte) {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = key('a', i)
		vals[i] = []byte(fmt.Sprintf("value-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i%37))))
		if err := s.Put(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, keys, vals
}

// checkRecoveredPrefix opens the store and asserts it holds exactly the
// records whose appends completed before the cut: every record fully
// before the torn tail is recovered byte-identical, nothing corrupt is
// served, and the store accepts new writes.
func checkRecoveredPrefix(t *testing.T, dir string, keys, vals [][]byte, wantRecovered int) {
	t.Helper()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if got := st.SnapshotRecords + st.ReplayedRecords; got != wantRecovered {
		t.Fatalf("recovered %d records, want %d (stats %+v)", got, wantRecovered, st)
	}
	for i := 0; i < wantRecovered; i++ {
		v, ok := s.Get(keys[i])
		if !ok {
			t.Fatalf("record %d lost (recovered prefix of %d)", i, wantRecovered)
		}
		if !bytes.Equal(v, vals[i]) {
			t.Fatalf("record %d corrupt after replay: %q != %q", i, v, vals[i])
		}
	}
	for i := wantRecovered; i < len(keys); i++ {
		if v, ok := s.Get(keys[i]); ok {
			t.Fatalf("record %d beyond the torn tail served: %q", i, v)
		}
	}
	// The truncated store is immediately writable again.
	if err := s.Put(key('z', 0), []byte("post-crash")); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
}

// recordOffsets parses the intact log and returns the end offset of each
// record, so tests can map a truncation point to the number of complete
// records before it.
func recordOffsets(t *testing.T, dir string) []int64 {
	t.Helper()
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off < int64(len(data)) {
		plen := int64(data[off])<<24 | int64(data[off+1])<<16 | int64(data[off+2])<<8 | int64(data[off+3])
		off += recHeaderSize + plen
		offs = append(offs, off)
	}
	return offs
}

// TestCrashTruncationEveryOffset kills the log at every record boundary
// and at a mid-record offset after each boundary: replay must recover
// exactly the records before the cut and discard the torn tail.
func TestCrashTruncationEveryOffset(t *testing.T) {
	const n = 25
	origDir, keys, vals := seedStore(t, n)
	intact, err := os.ReadFile(logPath(origDir))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, origDir)
	if len(offs) != n {
		t.Fatalf("parsed %d records from the log, want %d", len(offs), n)
	}

	for i, end := range offs {
		// A cut at the boundary keeps records 0..i; a cut 3 bytes into the
		// next record tears that record and still keeps exactly 0..i.
		for _, cut := range []int64{end, end + 3} {
			if cut > int64(len(intact)) {
				continue
			}
			want := i + 1
			dir := t.TempDir()
			if err := os.WriteFile(logPath(dir), intact[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			checkRecoveredPrefix(t, dir, keys, vals, want)
		}
	}
	// Truncating inside the very first record loses everything — and
	// serves nothing corrupt.
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir), intact[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	checkRecoveredPrefix(t, dir, keys, vals, 0)
}

// TestCrashTruncationRandomOffsets is the randomized sweep: truncate the
// log at arbitrary byte offsets and assert the recovered prefix is
// exactly the set of records wholly before the cut.
func TestCrashTruncationRandomOffsets(t *testing.T) {
	const n = 40
	origDir, keys, vals := seedStore(t, n)
	intact, err := os.ReadFile(logPath(origDir))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, origDir)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		cut := int64(rng.Intn(len(intact) + 1))
		want := 0
		for _, end := range offs {
			if end <= cut {
				want++
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(logPath(dir), intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		checkRecoveredPrefix(t, dir, keys, vals, want)
	}
}

// TestCorruptRecordNeverServed flips one byte inside a record's value:
// the CRC must reject it, replay stops there (conservative prefix
// recovery), and no corrupt bytes are ever returned by Get.
func TestCorruptRecordNeverServed(t *testing.T) {
	const n = 10
	dir, keys, vals := seedStore(t, n)
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, dir)
	// Flip a byte in the middle of record 4's payload.
	target := offs[3] + recHeaderSize + 20
	data[target] ^= 0xff
	if err := os.WriteFile(logPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	checkRecoveredPrefix(t, dir, keys, vals, 4)
}

// TestFaultInjectionLoop is the smoke target `make store-fault` runs: a
// repeated truncate-at-random-offset → reopen → verify → write → close
// loop, proving recovery composes — a store that survived one crash
// survives the next.
func TestFaultInjectionLoop(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	// A chop may revert a key to any earlier value (its latest Put was
	// torn off while an older record survived), so the invariant is
	// per-key prefix consistency: a served value must be something that
	// was actually written for that key, never a byte salad.
	history := map[string][]string{}
	confirmed := map[string]string{}

	for round := 0; round < 15; round++ {
		s := mustOpen(t, dir, Options{})
		// Everything that survived a clean close before the crash must be
		// present and intact; nothing unknown may appear.
		for k, v := range confirmed {
			got, ok := s.Get([]byte(k))
			if !ok {
				t.Fatalf("round %d: confirmed record %q lost", round, k)
			}
			if string(got) != v {
				t.Fatalf("round %d: record %q corrupt: %q != %q", round, k, got, v)
			}
		}
		s.Scan(nil, func(k, v []byte, seq uint64) bool {
			writes, ok := history[string(k)]
			if !ok {
				t.Fatalf("round %d: store serves never-written key %q", round, k)
			}
			for _, w := range writes {
				if string(v) == w {
					return true
				}
			}
			t.Fatalf("round %d: key %q has torn value %q, not in its write history", round, k, v)
			return false
		})

		for i := 0; i < 20; i++ {
			k := key(byte('a'+rng.Intn(3)), rng.Intn(30))
			v := fmt.Sprintf("r%d-i%d-%d", round, i, rng.Int63())
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			history[string(k)] = append(history[string(k)], v)
		}
		if round%4 == 3 {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Simulate the crash: chop the log at a random offset. Records
		// lost to the chop revert the externally-confirmed state to what a
		// fresh replay will see — recompute it by reading the store once.
		logData, err := os.ReadFile(logPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if len(logData) > 0 {
			cut := rng.Intn(len(logData) + 1)
			if err := os.WriteFile(logPath(dir), logData[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		check := mustOpen(t, dir, Options{})
		confirmed = map[string]string{}
		check.Scan(nil, func(k, v []byte, seq uint64) bool {
			confirmed[string(k)] = string(v)
			return true
		})
		if err := check.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
		t.Fatalf("compaction never produced a snapshot: %v", err)
	}
}
