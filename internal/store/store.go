// Package store is the persistent tier of the serving layer: an
// embedded, sort-ordered key-value store for canonical-form → minimal-
// query entries, built as an append log plus a snapshot.
//
// The design follows what the workload needs and nothing more. Cache
// entries are tiny (a minimized pattern plus a few counters), keys are
// fixed-size digests, and the access pattern is read-mostly with
// append-only writes — so the whole key space lives in memory and the
// disk structures exist purely for durability:
//
//   - Every Put appends one CRC-checked record to the log. A record the
//     CRC does not vouch for is never surfaced, so a torn write (crash
//     mid-append, disk-full truncation) costs at most the tail records,
//     never a corrupt entry.
//   - Open loads the snapshot (if any), then replays the log over it.
//     Replay stops at the first record the framing or checksum rejects
//     and truncates the file there — the crash-consistent prefix wins,
//     the torn tail is discarded, and the store is immediately writable
//     again.
//   - Compact writes every live entry, in key order, to a fresh
//     snapshot (atomically, via rename) and truncates the log. A
//     gracefully shut down store therefore reopens from the snapshot
//     alone with an empty log to replay.
//
// Keys are raw bytes compared lexicographically, which makes the
// encoding order-preserving by construction. The serving layer uses
// fixed-prefix keys — constraint-set fingerprint (16 bytes) followed by
// pattern fingerprint (16 bytes), see EncodeKey — so one constraint
// set's entries are contiguous under Scan and a replica warm-starts by
// scanning exactly its own prefix. Entries carry a monotonic write
// sequence so callers can rank them by recency (the warm-start "hottest
// first" order: last written, first reloaded).
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// KeySize is the length of a serving-layer key: two 16-byte
// fingerprints, constraint set first. The store itself accepts keys of
// any nonzero length up to 64 KiB — fixed-size keys are a property of
// the serving layer's encoding, not a store invariant.
const KeySize = 32

// EncodeKey builds the serving-layer key for one cache entry from the
// two hex fingerprints (ics.Set.Fingerprint, pattern.Fingerprint): the
// decoded constraint digest followed by the decoded pattern digest.
// Keys sort first by constraint set, then by pattern — the fixed prefix
// that makes per-constraint-set batch scans contiguous.
func EncodeKey(constraintFP, patternFP string) ([]byte, error) {
	c, err := hex.DecodeString(constraintFP)
	if err != nil {
		return nil, fmt.Errorf("store: constraint fingerprint %q is not hex: %w", constraintFP, err)
	}
	p, err := hex.DecodeString(patternFP)
	if err != nil {
		return nil, fmt.Errorf("store: pattern fingerprint %q is not hex: %w", patternFP, err)
	}
	if len(c) != KeySize/2 || len(p) != KeySize/2 {
		return nil, fmt.Errorf("store: fingerprint lengths %d+%d, want %d+%d", len(c), len(p), KeySize/2, KeySize/2)
	}
	return append(c, p...), nil
}

// Record framing, identical in the log and the snapshot:
//
//	[4B big-endian payload length][4B big-endian CRC-32C of payload][payload]
//	payload = [2B big-endian key length][key][value]
//
// The CRC covers the payload only; the length field is validated by
// range checks (a corrupt length either fails them or misaligns the CRC,
// which then fails). Big-endian lengths keep hex dumps readable; the
// keys themselves are opaque bytes.
const (
	recHeaderSize = 8
	maxKeyLen     = 1 << 16
	maxValLen     = 1 << 26 // 64 MiB — far above any minimized pattern
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configure Open.
type Options struct {
	// Sync fsyncs the log after every Put. Off by default: the serving
	// layer treats the store as a cache whose worst-case loss (records
	// since the last OS writeback) costs recomputation, not correctness.
	Sync bool
	// CompactThreshold auto-compacts when the live log holds at least
	// this many records. Zero means manual compaction only (Compact, or
	// the daemon's graceful shutdown).
	CompactThreshold int
}

// Stats describes the store's state and the outcome of its last Open.
type Stats struct {
	// Entries is the number of live keys.
	Entries int
	// LogRecords and LogBytes describe the append log since the last
	// compaction.
	LogRecords int
	LogBytes   int64
	// SnapshotRecords and ReplayedRecords split the entries loaded at
	// Open between the snapshot and the log replayed over it.
	SnapshotRecords int
	ReplayedRecords int
	// TornBytes is how many trailing log bytes Open discarded because a
	// record's framing or checksum rejected them (a torn append).
	TornBytes int64
	// Compactions counts snapshot rewrites over the store's lifetime in
	// this process.
	Compactions int64
}

type record struct {
	val []byte
	seq uint64
}

// Store is an embedded persistent KV store. It is safe for concurrent
// use.
type Store struct {
	mu      sync.Mutex
	dir     string
	log     *os.File
	logW    *bufio.Writer
	entries map[string]record
	seq     uint64
	opts    Options
	stats   Stats
	closed  bool
}

func logPath(dir string) string      { return filepath.Join(dir, "log") }
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot") }

// Open opens (creating if needed) the store rooted at dir: it loads the
// snapshot, replays the log over it — truncating a torn tail — and
// leaves the log open for appends.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, entries: make(map[string]record), opts: opts}

	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayLog(); err != nil {
		return nil, err
	}

	f, err := os.OpenFile(logPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.log = f
	s.logW = bufio.NewWriter(f)
	s.stats.Entries = len(s.entries)
	return s, nil
}

// loadSnapshot reads the compacted baseline, if one exists. A snapshot
// is written atomically (tmp + rename), so a torn snapshot can only come
// from file corruption; replay stops at the first bad record and keeps
// the prefix, mirroring the log policy.
func (s *Store) loadSnapshot() error {
	f, err := os.Open(snapshotPath(s.dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	n, _, err := s.readRecords(f)
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	s.stats.SnapshotRecords = n
	return nil
}

// replayLog applies the append log over the snapshot state and
// truncates it at the first record that fails framing or CRC — the torn
// tail of a crashed append.
func (s *Store) replayLog() error {
	f, err := os.Open(logPath(s.dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	n, good, err := s.readRecords(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("store: replaying log: %w", err)
	}
	fi, err := os.Stat(logPath(s.dir))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if torn := fi.Size() - good; torn > 0 {
		s.stats.TornBytes = torn
		if err := os.Truncate(logPath(s.dir), good); err != nil {
			return fmt.Errorf("store: truncating torn log tail: %w", err)
		}
	}
	s.stats.ReplayedRecords = n
	s.stats.LogRecords = n
	s.stats.LogBytes = good
	return nil
}

// readRecords streams records from r into the entry map, returning the
// record count and the byte offset of the end of the last good record.
// A record rejected by framing or CRC ends the stream without error —
// that is the torn-tail policy, not a failure. Only I/O errors are
// returned.
func (s *Store) readRecords(r io.Reader) (n int, good int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [recHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return n, good, nil
			}
			return n, good, err
		}
		plen := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if plen < 2 || plen > maxKeyLen+maxValLen {
			return n, good, nil // implausible length: treat as torn
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return n, good, nil
			}
			return n, good, err
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return n, good, nil // checksum rejects: torn or corrupt, stop here
		}
		klen := int(binary.BigEndian.Uint16(payload[0:2]))
		if klen == 0 || 2+klen > len(payload) {
			return n, good, nil
		}
		key := string(payload[2 : 2+klen])
		val := payload[2+klen:]
		s.seq++
		s.entries[key] = record{val: val, seq: s.seq}
		n++
		good += int64(recHeaderSize) + int64(plen)
	}
}

func appendRecord(w io.Writer, key, val []byte) (int64, error) {
	plen := 2 + len(key) + len(val)
	buf := make([]byte, recHeaderSize+plen)
	binary.BigEndian.PutUint32(buf[0:4], uint32(plen))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(key)))
	copy(buf[10:], key)
	copy(buf[10+len(key):], val)
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], crcTable))
	n, err := w.Write(buf)
	return int64(n), err
}

// Put inserts or replaces key. The value is copied; the caller keeps
// ownership of both slices.
func (s *Store) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(val), maxValLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	n, err := appendRecord(s.logW, key, val)
	if err == nil {
		err = s.logW.Flush()
	}
	if err == nil && s.opts.Sync {
		err = s.log.Sync()
	}
	if err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	s.seq++
	s.entries[string(key)] = record{val: append([]byte(nil), val...), seq: s.seq}
	s.stats.Entries = len(s.entries)
	s.stats.LogRecords++
	s.stats.LogBytes += n
	if s.opts.CompactThreshold > 0 && s.stats.LogRecords >= s.opts.CompactThreshold {
		return s.compactLocked()
	}
	return nil
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.entries[string(key)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), rec.val...), true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Scan calls fn for every entry whose key starts with prefix, in
// ascending key order (bytewise — the encoding is order-preserving), with
// the entry's write sequence (higher = written later). fn returning
// false stops the scan. The slices passed to fn are snapshots the
// callback may retain; a nil or empty prefix scans everything.
func (s *Store) Scan(prefix []byte, fn func(key, val []byte, seq uint64) bool) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.entries))
	p := string(prefix)
	for k := range s.entries {
		if len(k) >= len(p) && k[:len(p)] == p {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	type kv struct {
		key string
		rec record
	}
	out := make([]kv, len(keys))
	for i, k := range keys {
		out[i] = kv{k, s.entries[k]}
	}
	s.mu.Unlock()
	for _, e := range out {
		if !fn([]byte(e.key), append([]byte(nil), e.rec.val...), e.rec.seq) {
			return
		}
	}
}

// Compact rewrites the snapshot from the live entries (sorted by key,
// written to a temporary file, fsynced, renamed into place) and
// truncates the log. After a clean Compact + Close the next Open replays
// nothing.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := snapshotPath(s.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := appendRecord(w, []byte(k), s.entries[k].val); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, snapshotPath(s.dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := s.log.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating log: %w", err)
	}
	if _, err := s.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logW.Reset(s.log)
	s.stats.LogRecords = 0
	s.stats.LogBytes = 0
	s.stats.Compactions++
	return nil
}

// Stats returns a snapshot of the store's state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// Close flushes and closes the log. The store is unusable afterwards;
// reopen with Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.logW.Flush()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: closing: %w", err)
	}
	return nil
}
