package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start(CIM)
	sp.End()
	tr.AddDur(Chase, time.Second)
	tr.Add(Tests, 7)
	tr.Merge(New())
	tr.Reset()
	if tr.Dur(Chase) != 0 || tr.Count(Tests) != 0 {
		t.Fatal("nil trace reported nonzero values")
	}
	if tr.PhaseDurs() != [NumPhases]time.Duration{} {
		t.Fatal("nil trace PhaseDurs not zero")
	}
}

func TestSpanAccumulates(t *testing.T) {
	tr := New()
	sp := tr.Start(CDM)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d := tr.Dur(CDM); d < 2*time.Millisecond {
		t.Fatalf("Dur(CDM) = %v, want >= 2ms", d)
	}
	if d := tr.Dur(CIM); d != 0 {
		t.Fatalf("Dur(CIM) = %v, want 0", d)
	}

	// Two spans on the same phase add up.
	before := tr.Dur(CDM)
	sp = tr.Start(CDM)
	time.Sleep(time.Millisecond)
	sp.End()
	if d := tr.Dur(CDM); d < before+time.Millisecond {
		t.Fatalf("second span did not accumulate: %v -> %v", before, d)
	}
}

// TestSpansNest checks the documented nesting invariant: an outer ACIM
// span covers inner Chase/CIM/Compact spans, so the outer duration is at
// least the sum of the inner ones.
func TestSpansNest(t *testing.T) {
	tr := New()
	outer := tr.Start(ACIM)
	for _, p := range []Phase{Chase, CIM, Compact} {
		sp := tr.Start(p)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	outer.End()
	sum := tr.Dur(Chase) + tr.Dur(CIM) + tr.Dur(Compact)
	if tr.Dur(ACIM) < sum {
		t.Fatalf("ACIM %v < chase+cim+compact %v", tr.Dur(ACIM), sum)
	}
}

func TestCountersAndAddDur(t *testing.T) {
	tr := New()
	tr.Add(Tests, 3)
	tr.Add(Tests, 4)
	tr.Add(CDMRemoved, 0) // no-op, must not disturb anything
	if got := tr.Count(Tests); got != 7 {
		t.Fatalf("Count(Tests) = %d, want 7", got)
	}
	tr.AddDur(Parse, 5*time.Microsecond)
	tr.AddDur(Parse, 5*time.Microsecond)
	if got := tr.Dur(Parse); got != 10*time.Microsecond {
		t.Fatalf("Dur(Parse) = %v, want 10µs", got)
	}
	durs := tr.PhaseDurs()
	if durs[Parse] != 10*time.Microsecond {
		t.Fatalf("PhaseDurs()[Parse] = %v", durs[Parse])
	}
}

func TestMergeAndReset(t *testing.T) {
	a, b := New(), New()
	a.AddDur(CIM, time.Millisecond)
	a.Add(TablesBuilt, 1)
	b.AddDur(CIM, 2*time.Millisecond)
	b.Add(TablesDerived, 9)
	a.Merge(b)
	if a.Dur(CIM) != 3*time.Millisecond {
		t.Fatalf("merged Dur(CIM) = %v", a.Dur(CIM))
	}
	if a.Count(TablesBuilt) != 1 || a.Count(TablesDerived) != 9 {
		t.Fatalf("merged counters: built=%d derived=%d",
			a.Count(TablesBuilt), a.Count(TablesDerived))
	}
	a.Reset()
	if a.Dur(CIM) != 0 || a.Count(TablesDerived) != 0 {
		t.Fatal("Reset left residue")
	}
}

// TestConcurrentSpans exercises the atomics under -race: many goroutines
// timing the same phase and bumping the same counter.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.Start(CIM)
				tr.Add(Tests, 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Count(Tests); got != workers*100 {
		t.Fatalf("Count(Tests) = %d, want %d", got, workers*100)
	}
	if tr.Dur(CIM) <= 0 {
		t.Fatal("no CIM time accumulated")
	}
}

func TestNames(t *testing.T) {
	want := []string{"parse", "chase", "cdm", "acim", "cim", "compact", "match"}
	for i, p := range Phases() {
		if p.String() != want[i] {
			t.Errorf("phase %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if Phase(250).String() != "unknown" || Counter(250).String() != "unknown" {
		t.Error("out-of-range names should be \"unknown\"")
	}
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		if seen[c.String()] {
			t.Errorf("duplicate counter name %q", c)
		}
		seen[c.String()] = true
	}
}
