// Package trace provides cheap per-phase instrumentation for one
// minimization request. The pipeline (parse → chase/augment → CDM →
// ACIM/CIM → compact) is exactly the phase split the paper's Figure 7
// experiments report, and it is where serving cost varies with pattern
// shape, so a Trace carries one duration accumulator and a handful of
// counters per phase — nothing else.
//
// Design constraints, in order:
//
//  1. Free when off. Every method is a no-op on a nil *Trace, so the
//     algorithm packages thread a possibly-nil trace unconditionally and
//     the untraced hot path pays one predictable nil check per span —
//     no interface dispatch, no allocation.
//  2. Allocation-free when on. A Trace is two fixed-size arrays of
//     atomics; starting and ending a span allocates nothing (Span is a
//     small value), so tracing a request costs one Trace allocation
//     total and the ≤2% overhead budget on the Fig 7(b) benchmark holds.
//  3. Safe under concurrency. Phase durations and counters are atomics:
//     the engine's parallel candidate screening and the service's
//     histogram merge may touch a Trace from several goroutines.
//
// Spans nest: the ACIM phase wraps the Chase, CIM and Compact
// sub-phases, so Dur(ACIM) ≥ Dur(Chase)+Dur(CIM)+Dur(Compact) while the
// sub-phases themselves are disjoint. Consumers that want disjoint
// buckets (the service's per-phase histograms) use the sub-phases plus
// Parse and CDM.
package trace

import (
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the minimization pipeline.
type Phase uint8

const (
	// Parse is query-text (or XPath) parsing, recorded by the serving
	// layer — the algorithm packages never see unparsed text.
	Parse Phase = iota
	// Chase is the augmentation step of ACIM (chase.Augment).
	Chase
	// CDM is the constraint-dependent local pre-filter (cdm.MinimizeInPlace).
	CDM
	// ACIM is the whole augment→CIM→strip pipeline; it nests Chase, CIM
	// and Compact.
	ACIM
	// CIM is the constraint-independent minimization loop, whichever
	// kernel runs it (incremental engine, scratch, map oracle, or the
	// engine package's parallel screening).
	CIM
	// Compact is the temporary-node strip after CIM (pattern.StripTemp).
	Compact
	// Match is pattern evaluation over a database — the serving layer's
	// /match endpoint, both materialized and streaming modes.
	Match
	// NumPhases bounds arrays indexed by Phase.
	NumPhases
)

var phaseNames = [NumPhases]string{"parse", "chase", "cdm", "acim", "cim", "compact", "match"}

// String returns the lower-case phase name used in metric labels and
// slow-query log keys.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Phases lists every phase in pipeline order — the iteration order of
// metric exporters.
func Phases() []Phase {
	return []Phase{Parse, Chase, CDM, ACIM, CIM, Compact, Match}
}

// Counter identifies one per-request work counter.
type Counter uint8

const (
	// CDMRemoved and ACIMRemoved are nodes eliminated per phase.
	CDMRemoved Counter = iota
	ACIMRemoved
	// Augmented is the number of temporary witness nodes the chase added.
	Augmented
	// Tests is the number of leaf-redundancy tests the CIM phase ran.
	Tests
	// TablesBuilt and TablesDerived split the CIM phase's images tables
	// into full constructions and master-derived tables (see cim.Stats).
	TablesBuilt
	TablesDerived
	// PlansCompiled and PlanHits split the request's chase-plan registry
	// lookups into compilations (misses) and cache hits (see chase.Registry).
	PlansCompiled
	PlanHits
	// NumCounters bounds arrays indexed by Counter.
	NumCounters
)

var counterNames = [NumCounters]string{
	"cdm_removed", "acim_removed", "augmented", "tests", "tables_built", "tables_derived",
	"plans_compiled", "plan_hits",
}

// String returns the snake_case counter name used in metric labels.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Trace accumulates the per-phase durations and counters of one
// minimization request. The zero value is ready to use; a nil *Trace is
// a valid "tracing off" receiver for every method.
type Trace struct {
	durs   [NumPhases]atomic.Int64 // nanoseconds per phase
	counts [NumCounters]atomic.Int64
}

// New returns an empty Trace.
func New() *Trace { return new(Trace) }

// Span is an open phase timer. End it exactly once; the zero Span (from
// a nil Trace) ends harmlessly.
type Span struct {
	tr    *Trace
	start time.Time
	phase Phase
}

// Start opens a span on phase p. Spans on different phases may overlap
// (that is how ACIM nests its sub-phases); two open spans on the same
// phase would double-count.
func (t *Trace) Start(p Phase) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, start: time.Now(), phase: p}
}

// End closes the span, adding its elapsed time to the phase total.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.durs[s.phase].Add(int64(time.Since(s.start)))
}

// AddDur adds d to phase p directly — for callers that already measured
// (the algorithm packages' existing Stats carry durations).
func (t *Trace) AddDur(p Phase, d time.Duration) {
	if t == nil {
		return
	}
	t.durs[p].Add(int64(d))
}

// Dur returns the accumulated time of phase p; zero on a nil Trace.
func (t *Trace) Dur(p Phase) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.durs[p].Load())
}

// Add increments counter c by n.
func (t *Trace) Add(c Counter, n int) {
	if t == nil || n == 0 {
		return
	}
	t.counts[c].Add(int64(n))
}

// Count returns the value of counter c; zero on a nil Trace.
func (t *Trace) Count(c Counter) int64 {
	if t == nil {
		return 0
	}
	return t.counts[c].Load()
}

// PhaseDurs returns the duration of every phase in pipeline order,
// indexed by Phase. Nil Trace returns the zero array.
func (t *Trace) PhaseDurs() [NumPhases]time.Duration {
	var out [NumPhases]time.Duration
	if t == nil {
		return out
	}
	for p := Phase(0); p < NumPhases; p++ {
		out[p] = time.Duration(t.durs[p].Load())
	}
	return out
}

// Merge adds every duration and counter of o into t. Nil receivers and
// nil arguments are no-ops.
func (t *Trace) Merge(o *Trace) {
	if t == nil || o == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if d := o.durs[p].Load(); d != 0 {
			t.durs[p].Add(d)
		}
	}
	for c := Counter(0); c < NumCounters; c++ {
		if n := o.counts[c].Load(); n != 0 {
			t.counts[c].Add(n)
		}
	}
}

// Reset zeroes every duration and counter so a Trace can be pooled.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		t.durs[p].Store(0)
	}
	for c := Counter(0); c < NumCounters; c++ {
		t.counts[c].Store(0)
	}
}
