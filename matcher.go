package tpq

import (
	"context"
	"iter"
	"math/big"

	"tpq/internal/match"
	"tpq/internal/match/stream"
)

// MatcherOptions configure a Matcher, mirroring MinimizerOptions: build
// once over a database, evaluate many queries against it.
type MatcherOptions struct {
	// Forest is the database to evaluate against. Ignored when Index is
	// set; nil with a nil Index means an empty database.
	Forest *Forest
	// Index is a prebuilt inverted index over the database. Set it to
	// share one index between a Matcher and other consumers (cmd/tpqd
	// does); when nil, the Matcher builds its own from Forest.
	Index *MatchIndex
	// MemoryLimit bounds, in bytes, the per-iteration memo state of the
	// streaming engine. 0 picks the engine default (64 MiB), negative
	// means unlimited. Crossing the ceiling sheds the memo tables —
	// evaluation slows down but answers are unaffected.
	MemoryLimit int
}

// MatchQuery is a pattern compiled for streaming evaluation; see
// Matcher.Compile. Compile once, iterate many times — a MatchQuery is
// immutable and safe for concurrent use.
type MatchQuery = stream.Query

// Embedding is one full assignment of pattern nodes to database nodes,
// yielded by the embedding iterators. Its storage is reused between
// yields: retain one past the loop body with Clone.
type Embedding = stream.Embedding

// Matcher is a long-lived evaluation instance over one database: an
// inverted type index shared by every query, feeding a streaming
// twig-join engine that yields answers and embeddings incrementally
// under a memory ceiling. It is safe for concurrent use. Prefer it over
// the package-level Match helpers whenever more than a handful of
// queries run against the same forest.
type Matcher struct {
	idx  *MatchIndex
	opts stream.Options
}

// NewMatcher returns a Matcher with the given options.
func NewMatcher(opts MatcherOptions) *Matcher {
	idx := opts.Index
	if idx == nil {
		f := opts.Forest
		if f == nil {
			f = NewForest()
		}
		idx = match.NewForestIndex(f)
	}
	return &Matcher{idx: idx, opts: stream.Options{MemoryLimit: opts.MemoryLimit}}
}

// Index returns the Matcher's inverted index, for sharing with other
// consumers. Callers must treat it as read-only.
func (m *Matcher) Index() *MatchIndex { return m.idx }

// Forest returns the database the Matcher evaluates against.
func (m *Matcher) Forest() *Forest { return m.idx.Forest() }

// Compile prepares p for streaming evaluation. It fails when p is empty
// or has no output node. The result can be iterated concurrently and is
// the way to evaluate one query repeatedly without re-deriving its
// candidate representation.
func (m *Matcher) Compile(p *Pattern) (*MatchQuery, error) {
	return stream.Compile(p, m.idx, m.opts)
}

// Answers returns a lazy, document-ordered, duplicate-free iterator over
// the answer set of p: the database nodes the output node binds to in at
// least one embedding. Breaking out of the range stops all matching
// work; canceling ctx cuts the sequence short (check ctx.Err() after the
// loop to distinguish exhaustion from cancellation). An invalid pattern
// yields nothing — use Compile to observe the error.
func (m *Matcher) Answers(ctx context.Context, p *Pattern) iter.Seq[*DataNode] {
	q, err := m.Compile(p)
	if err != nil {
		return func(func(*DataNode) bool) {}
	}
	return q.Answers(ctx)
}

// Embeddings returns a lazy iterator over every embedding of p, in
// lexicographic pattern-preorder order. The enumeration is
// polynomial-delay: taking the first k embeddings of a potentially
// exponential set does work proportional to k. The yielded Embedding's
// storage is reused between yields — Clone it to retain it. Cancellation
// and invalid patterns behave as in Answers.
func (m *Matcher) Embeddings(ctx context.Context, p *Pattern) iter.Seq[Embedding] {
	q, err := m.Compile(p)
	if err != nil {
		return func(func(Embedding) bool) {}
	}
	return q.Embeddings(ctx)
}

// AnswersDisjunction returns a lazy, document-ordered, duplicate-free
// iterator over the answer set of a disjunctive query: the union of the
// disjuncts' answer sets, streamed as a k-way merge over per-disjunct
// iterators with dedup by answer node. Cancellation and invalid
// disjuncts behave as in Answers (a disjunct that fails to compile
// yields nothing; compile the disjuncts individually to observe errors).
func (m *Matcher) AnswersDisjunction(ctx context.Context, d *Disjunction) iter.Seq[*DataNode] {
	if d == nil || len(d.Disjuncts) == 0 {
		return func(func(*DataNode) bool) {}
	}
	qs := make([]*stream.Query, 0, len(d.Disjuncts))
	for _, p := range d.Disjuncts {
		if q, err := m.Compile(p); err == nil {
			qs = append(qs, q)
		}
	}
	return stream.UnionAnswers(ctx, qs)
}

// MatchDisjunction materializes the full answer set of a disjunctive
// query in document order; see AnswersDisjunction.
func (m *Matcher) MatchDisjunction(d *Disjunction) []*DataNode {
	var out []*DataNode
	for v := range m.AnswersDisjunction(context.Background(), d) {
		out = append(out, v)
	}
	return out
}

// Match materializes the full answer set of p in document order — the
// drained Answers iterator, for callers that want the slice.
func (m *Matcher) Match(p *Pattern) []*DataNode {
	var out []*DataNode
	for v := range m.Answers(context.Background(), p) {
		out = append(out, v)
	}
	return out
}

// Count returns the number of answers of p.
func (m *Matcher) Count(p *Pattern) int {
	n := 0
	for range m.Answers(context.Background(), p) {
		n++
	}
	return n
}

// CountEmbeddings returns the number of distinct full embeddings of p as
// a big integer. The count can be exponential in the pattern size, so it
// runs on the materialized counting kernel rather than the streaming
// enumerator; use Embeddings to visit the embeddings themselves.
func (m *Matcher) CountEmbeddings(p *Pattern) *big.Int {
	return match.CountEmbeddings(p, m.idx.Forest())
}
